"""Kryo-style serialization (paper Figure 1(c)).

Kryo's optimizations over Java S/D, all modelled here:

* **Integer class numbering** — every class (including primitives/arrays)
  must be registered up front; the stream stores a small varint class ID
  instead of name strings. The *same* registry must be used to deserialize.
* **Null-check byte** — each object slot starts with a 1-byte marker:
  null, back reference, or new object.
* **Optimized reflection** — field access goes through ReflectASM-style
  index tables (:class:`~repro.jvm.reflection.ReflectAsmAccess`), avoiding
  string lookups entirely.
* **Varint-packed integers** — INT/LONG field values are zig-zag varints.

Stream grammar:

    stream  := content
    content := MARK_NULL
             | MARK_BACKREF objectId(varint)
             | MARK_OBJECT classId(varint) fields...
             | MARK_ARRAY  classId(varint) length(varint) elements...

Reference fields and reference-array elements recurse into ``content``.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro.common.bufpool import acquire_buffer, release_buffer
from repro.common.errors import FormatError, TruncatedStreamError
from repro.formats import codegen as CG
from repro.formats import plans as P
from repro.formats.base import (
    DeserializationResult,
    SerializationResult,
    SerializedStream,
    Serializer,
    WorkProfile,
)
from repro.formats.limits import DecodeLimits, resolve_limits
from repro.formats.registry import ClassRegistration
from repro.formats.streams import StreamReader, StreamWriter
from repro.jvm.graph import ObjectGraph
from repro.jvm.heap import Heap, HeapObject
from repro.jvm.klass import ArrayKlass, FieldKind, InstanceKlass, Klass
from repro.jvm.reflection import ReflectAsmAccess

MARK_NULL = 0x00
MARK_BACKREF = 0x01
MARK_OBJECT = 0x02
MARK_ARRAY = 0x03

_SECTION_MARKS = "null_checks"
_SECTION_CLASS_IDS = "class_ids"
_SECTION_DATA = "field_data"
_SECTION_REFS = "back_references"

# Calibrated against the paper's ratios: Kryo serialization is ~2.3x
# faster than Java S/D (still paying graph traversal and the reference-
# resolver identity map), while deserialization is a tight streaming loop
# ~52x faster than Java's reflective one (Figure 10).
_INSTR_PER_OBJECT = 3900  # serializer dispatch + reference-resolver insert
_INSTR_PER_PRIMITIVE = 80  # ReflectASM accessor + varint/width write
_INSTR_PER_REFERENCE = 160  # resolver lookup + marker
_INSTR_PER_OBJECT_DESER = 420  # registry fetch + resolver append
_INSTR_PER_FIELD_DESER = 45  # ReflectASM indexed set
_INSTR_PER_ALLOC = 70  # instantiator fast path
_INSTR_PER_STREAM_BYTE = 1
_AUX_ACCESSES_PER_OBJECT_SER = 6  # identity-map probe + insert
_AUX_ACCESSES_PER_OBJECT_DESER = 1  # resolver table append

_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_MASK64 = (1 << 64) - 1


class KryoSerializer(Serializer):
    """Kryo with mandatory type registration ("Kryo" in the paper)."""

    name = "kryo"

    def __init__(
        self,
        registration: Optional[ClassRegistration] = None,
        use_plans: bool = True,
        use_codegen: bool = False,
    ):
        self.registration = (
            registration if registration is not None else ClassRegistration()
        )
        # Plan kernels are byte-identical to the interpreter; the class-ID
        # varints depend on this instance's registration, so they are
        # cached per serialize call, not baked into the shared plans (nor
        # into the shared codegen kernels — the generated functions only
        # cover field data, the mark+class-ID prefix is per-call data).
        self.use_plans = use_plans
        self.use_codegen = use_codegen

    def register(self, klass) -> int:
        """Kryo's ``register(Class)``: required before S/D of that type."""
        return self.registration.register(klass)

    # ------------------------------------------------------------------ serialize

    def serialize(self, root: HeapObject) -> SerializationResult:
        if self.use_codegen:
            return self._serialize_codegen(root)
        if self.use_plans:
            return self._serialize_planned(root)
        writer = StreamWriter(pooled=True)
        profile = WorkProfile()
        asm = ReflectAsmAccess()
        object_ids: Dict[int, int] = {}

        def write_primitive(kind: FieldKind, value) -> None:
            if kind is FieldKind.BOOLEAN:
                writer.write_u8(1 if value else 0, _SECTION_DATA)
            elif kind is FieldKind.BYTE:
                writer.write_bytes(
                    (int(value) & 0xFF).to_bytes(1, "little"), _SECTION_DATA
                )
            elif kind in (FieldKind.CHAR, FieldKind.SHORT):
                writer.write_u16(int(value) & 0xFFFF, _SECTION_DATA)
            elif kind in (FieldKind.INT, FieldKind.LONG):
                writer.write_signed_varint(int(value), _SECTION_DATA)
            elif kind is FieldKind.FLOAT:
                writer.write_bytes(struct.pack("<f", float(value)), _SECTION_DATA)
            elif kind is FieldKind.DOUBLE:
                writer.write_f64(float(value), _SECTION_DATA)
            else:  # pragma: no cover - guarded by callers
                raise FormatError(f"not a primitive kind: {kind}")
            profile.value_fields += 1
            profile.add_instructions(_INSTR_PER_PRIMITIVE)

        def emit_object(obj: HeapObject):
            profile.objects += 1
            profile.add_instructions(_INSTR_PER_OBJECT)
            profile.aux_random_accesses += _AUX_ACCESSES_PER_OBJECT_SER
            profile.dependent_loads += 2
            class_id = self.registration.id_of(obj.klass)
            object_ids[obj.address] = len(object_ids)
            if isinstance(obj.klass, ArrayKlass):
                writer.write_u8(MARK_ARRAY, _SECTION_MARKS)
                writer.write_varint(class_id, _SECTION_CLASS_IDS)
                writer.write_varint(obj.length, _SECTION_DATA)
                if obj.klass.element_kind.is_reference:
                    for index in range(obj.length):
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_REFERENCE)
                        yield obj.get_element(index)
                else:
                    # One bulk heap read for the whole element storage.
                    element_kind = obj.klass.element_kind
                    for value in obj.get_elements():
                        write_primitive(element_kind, value)
            else:
                klass = obj.klass
                assert isinstance(klass, InstanceKlass)
                writer.write_u8(MARK_OBJECT, _SECTION_MARKS)
                writer.write_varint(class_id, _SECTION_CLASS_IDS)
                for index, descriptor in enumerate(klass.fields):
                    if descriptor.kind.is_reference:
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_REFERENCE)
                        profile.dependent_loads += 1
                        yield asm.get_field_by_index(obj, index)
                    else:
                        write_primitive(
                            descriptor.kind, asm.get_field_by_index(obj, index)
                        )

        stack = [emit_object(root)]
        while stack:
            try:
                child = next(stack[-1])
            except StopIteration:
                stack.pop()
                continue
            if child is None:
                writer.write_u8(MARK_NULL, _SECTION_MARKS)
            elif child.address in object_ids:
                writer.write_u8(MARK_BACKREF, _SECTION_MARKS)
                writer.write_varint(object_ids[child.address], _SECTION_REFS)
            else:
                stack.append(emit_object(child))

        data = writer.detach()
        profile.add_instructions(asm.cost.estimated_instructions())
        profile.add_instructions(len(data) * _INSTR_PER_STREAM_BYTE)
        profile.bytes_read = ObjectGraph.from_root(root).total_bytes
        profile.bytes_written = len(data)
        stream = SerializedStream(
            format_name=self.name,
            data=data,
            sections=dict(writer.sections),
            object_count=profile.objects,
            graph_bytes=profile.bytes_read,
        )
        stream.check_sections()
        return SerializationResult(stream, profile)

    # ------------------------------------------------------- serialize (plan kernel)

    def _serialize_planned(self, root: HeapObject) -> SerializationResult:
        """Compiled-plan serialize: byte-identical to the interpreter."""
        heap = root.heap
        read = heap.memory.read
        object_at = heap.object_at
        header_slots = heap.header_slots
        id_of = self.registration.id_of
        append_varint = P.append_varint
        append_signed = P.append_signed_varint

        out = acquire_buffer()
        mark_count = 0
        class_id_count = 0
        data_count = 0
        ref_count = 0

        object_ids: Dict[int, int] = {}  # heap address -> object id
        next_object_id = 0
        class_id_bytes: Dict[Klass, bytes] = {}  # per-call: registration-local

        objects = 0
        instr = 0
        reflect_instr = 0
        aux = 0
        dep = 0
        value_fields = 0
        reference_fields = 0
        graph_bytes = 0

        plans_local: Dict[Klass, object] = {}

        def emit(obj: HeapObject):
            nonlocal out, mark_count, class_id_count, data_count, next_object_id
            nonlocal objects, instr, reflect_instr, aux, dep
            nonlocal value_fields, reference_fields, graph_bytes
            klass = obj.klass
            plan = plans_local.get(klass)
            if plan is None:
                plan = P.plan_for(self.name, klass, header_slots)
                plans_local[klass] = plan
            encoded_id = class_id_bytes.get(klass)
            if encoded_id is None:
                id_buffer = bytearray()
                append_varint(id_buffer, id_of(klass))
                encoded_id = bytes(id_buffer)
                class_id_bytes[klass] = encoded_id
            objects += 1
            aux += plan.ser_aux
            dep += plan.ser_dep
            object_ids[obj.address] = next_object_id
            next_object_id += 1
            is_array = klass.is_array
            out.append(MARK_ARRAY if is_array else MARK_OBJECT)
            mark_count += 1
            out += encoded_id
            class_id_count += len(encoded_id)
            if is_array:
                length = obj.length
                data_count += append_varint(out, length)
                instr += plan.ser_instr + length * plan.ser_elem_instr
                graph_bytes += obj.size_bytes
                element_base = obj.fields_base + 8
                if plan.is_ref:
                    reference_fields += length
                    if length:
                        addresses = struct.unpack(
                            f"<{length}Q", read(element_base, length * 8)
                        )
                        return [1, addresses, 0]
                    return None
                value_fields += length
                if length == 0:
                    return None
                if plan.copy_elements:
                    nbytes = length * plan.element_width
                    out += read(element_base, nbytes)
                    data_count += nbytes
                else:  # INT/LONG arrays: zig-zag varint per element
                    values = struct.unpack(
                        f"<{length}{plan.varint_code}",
                        read(element_base, length * plan.element_width),
                    )
                    for value in values:
                        data_count += append_signed(out, value)
                return None
            instr += plan.ser_instr
            reflect_instr += plan.ser_reflect_instr
            value_fields += plan.n_prim
            reference_fields += plan.n_ref
            data_count += plan.enc_data_bytes
            graph_bytes += plan.size_bytes
            raw = read(obj.address, plan.size_bytes)
            if plan.n_ref == 0:
                for op, start, end in plan.enc_ops:
                    if op == P.OP_COPY:
                        out += raw[start:end]
                    elif op == P.OP_VARINT:
                        data_count += append_signed(
                            out, _I64.unpack_from(raw, start)[0]
                        )
                    else:  # OP_FLOAT
                        out += _F32.pack(_F64.unpack_from(raw, start)[0])
                return None
            return [0, plan.enc_ops, 0, raw]

        frame = emit(root)
        stack: List[list] = [frame] if frame is not None else []
        while stack:
            frame = stack[-1]
            descend = None
            if frame[0] == 0:  # instance: interleaved value/ref ops
                ops = frame[1]
                index = frame[2]
                raw = frame[3]
                op_count = len(ops)
                while index < op_count:
                    op, start, end = ops[index]
                    index += 1
                    if op == P.OP_COPY:
                        out += raw[start:end]
                    elif op == P.OP_VARINT:
                        data_count += append_signed(
                            out, _I64.unpack_from(raw, start)[0]
                        )
                    elif op == P.OP_FLOAT:
                        out += _F32.pack(_F64.unpack_from(raw, start)[0])
                    else:  # OP_REF
                        address = _U64.unpack_from(raw, start)[0]
                        if address == 0:
                            out.append(MARK_NULL)
                            mark_count += 1
                        else:
                            object_id = object_ids.get(address)
                            if object_id is not None:
                                out.append(MARK_BACKREF)
                                mark_count += 1
                                ref_count += append_varint(out, object_id)
                            else:
                                descend = emit(object_at(address))
                                if descend is not None:
                                    break
                frame[2] = index
            else:  # reference array
                addresses = frame[1]
                index = frame[2]
                count = len(addresses)
                while index < count:
                    address = addresses[index]
                    index += 1
                    if address == 0:
                        out.append(MARK_NULL)
                        mark_count += 1
                    else:
                        object_id = object_ids.get(address)
                        if object_id is not None:
                            out.append(MARK_BACKREF)
                            mark_count += 1
                            ref_count += append_varint(out, object_id)
                        else:
                            descend = emit(object_at(address))
                            if descend is not None:
                                break
                frame[2] = index
            if descend is not None:
                stack.append(descend)
            else:
                stack.pop()

        data = bytes(out)
        release_buffer(out)
        instr += reflect_instr + len(data) * _INSTR_PER_STREAM_BYTE
        profile = WorkProfile()
        profile.instructions = instr
        profile.objects = objects
        profile.value_fields = value_fields
        profile.reference_fields = reference_fields
        profile.dependent_loads = dep
        profile.aux_random_accesses = aux
        profile.bytes_read = graph_bytes
        profile.bytes_written = len(data)
        sections = {
            _SECTION_MARKS: mark_count,
            _SECTION_CLASS_IDS: class_id_count,
        }
        if data_count:
            sections[_SECTION_DATA] = data_count
        if ref_count:
            sections[_SECTION_REFS] = ref_count
        stream = SerializedStream(
            format_name=self.name,
            data=data,
            sections=sections,
            object_count=objects,
            graph_bytes=graph_bytes,
        )
        stream.check_sections()
        return SerializationResult(stream, profile)

    # ---------------------------------------------------- serialize (codegen kernel)

    def _serialize_codegen(self, root: HeapObject) -> SerializationResult:
        """Generated-kernel serialize: byte-identical to the plan tier.

        Instance field data runs through generated straight-line segments
        (inlined zig-zag varints included) over zero-copy heap views; the
        segments return the data bytes they appended, so ``field_data``
        accounting stays exact despite dynamic varint widths. Everything
        shape-constant folds per cell at the end of the walk.
        """
        heap = root.heap
        read = heap.memory.read
        view = heap.memory.view
        object_at = heap.object_at
        header_slots = heap.header_slots
        id_of = self.registration.id_of
        append_varint = P.append_varint
        append_signed = P.append_signed_varint

        out = acquire_buffer()

        object_ids: Dict[int, int] = {}  # heap address -> object id
        next_object_id = 0

        mark_dyn = 0  # null / backref markers
        ref_count = 0
        data_dyn = 0
        instr_dyn = 0
        value_fields_dyn = 0
        reference_fields_dyn = 0
        graph_bytes_dyn = 0

        # klass -> [prefix, count, kind, plan, leaf, steps, size_bytes]
        # kind: 0 = leaf instance, 1 = instance with refs, 2 = array;
        # prefix fuses the mark byte with this registration's class-ID
        # varint, so the per-object prelude is a single append.
        cells: Dict[Klass, list] = {}

        def make_cell(klass: Klass) -> list:
            plan = P.plan_for(self.name, klass, header_slots)
            id_buffer = bytearray()
            id_buffer.append(MARK_ARRAY if klass.is_array else MARK_OBJECT)
            append_varint(id_buffer, id_of(klass))
            prefix = bytes(id_buffer)
            if klass.is_array:
                cell = [prefix, 0, 2, plan, None, None, 0]
            else:
                kernel = CG.encode_kernel_for(self.name, klass, header_slots, plan)
                kind = 0 if plan.n_ref == 0 else 1
                cell = [
                    prefix, 0, kind, plan,
                    kernel.leaf, kernel.steps, plan.size_bytes,
                ]
            cells[klass] = cell
            return cell

        def emit(obj: HeapObject):
            nonlocal out, next_object_id, data_dyn, instr_dyn
            nonlocal value_fields_dyn, reference_fields_dyn, graph_bytes_dyn
            klass = obj.klass
            cell = cells.get(klass)
            if cell is None:
                cell = make_cell(klass)
            out += cell[0]
            cell[1] += 1
            object_ids[obj.address] = next_object_id
            next_object_id += 1
            kind = cell[2]
            if kind == 0:  # leaf instance: one generated straight-line call
                data_dyn += cell[4](out, view(obj.address, cell[6]))
                return None
            if kind == 1:  # instance with reference fields
                return [0, cell[5], 0, view(obj.address, cell[6])]
            plan = cell[3]  # array: bulk element path, as in the plan tier
            length = obj.length
            data_dyn += append_varint(out, length)
            instr_dyn += length * plan.ser_elem_instr
            graph_bytes_dyn += obj.size_bytes
            element_base = obj.fields_base + 8
            if plan.is_ref:
                reference_fields_dyn += length
                if length:
                    addresses = struct.unpack(
                        f"<{length}Q", read(element_base, length * 8)
                    )
                    return [1, addresses, 0]
                return None
            value_fields_dyn += length
            if length == 0:
                return None
            if plan.copy_elements:
                nbytes = length * plan.element_width
                out += read(element_base, nbytes)
                data_dyn += nbytes
            else:  # INT/LONG arrays: zig-zag varint per element
                values = struct.unpack(
                    f"<{length}{plan.varint_code}",
                    read(element_base, length * plan.element_width),
                )
                for value in values:
                    data_dyn += append_signed(out, value)
            return None

        frame = emit(root)
        stack: List[list] = [frame] if frame is not None else []
        while stack:
            frame = stack[-1]
            descend = None
            if frame[0] == 0:  # instance: generated segments + ref offsets
                steps = frame[1]
                index = frame[2]
                raw = frame[3]
                step_count = len(steps)
                while index < step_count:
                    step = steps[index]
                    index += 1
                    if step.__class__ is int:  # reference slot byte offset
                        address = _U64.unpack_from(raw, step)[0]
                        if address == 0:
                            out.append(MARK_NULL)
                            mark_dyn += 1
                        else:
                            object_id = object_ids.get(address)
                            if object_id is not None:
                                out.append(MARK_BACKREF)
                                mark_dyn += 1
                                ref_count += append_varint(out, object_id)
                            else:
                                descend = emit(object_at(address))
                                if descend is not None:
                                    break
                    else:
                        data_dyn += step(out, raw)
                frame[2] = index
            else:  # reference array
                addresses = frame[1]
                index = frame[2]
                count = len(addresses)
                while index < count:
                    address = addresses[index]
                    index += 1
                    if address == 0:
                        out.append(MARK_NULL)
                        mark_dyn += 1
                    else:
                        object_id = object_ids.get(address)
                        if object_id is not None:
                            out.append(MARK_BACKREF)
                            mark_dyn += 1
                            ref_count += append_varint(out, object_id)
                        else:
                            descend = emit(object_at(address))
                            if descend is not None:
                                break
                frame[2] = index
            if descend is not None:
                stack.append(descend)
            else:
                stack.pop()

        data = bytes(out)
        release_buffer(out)

        objects = 0
        instr = 0
        aux = 0
        dep = 0
        mark_count = mark_dyn
        class_id_count = 0
        value_fields = value_fields_dyn
        reference_fields = reference_fields_dyn
        graph_bytes = graph_bytes_dyn
        data_count = data_dyn
        for cell in cells.values():
            count = cell[1]
            plan = cell[3]
            objects += count
            aux += count * plan.ser_aux
            dep += count * plan.ser_dep
            mark_count += count
            class_id_count += count * (len(cell[0]) - 1)
            if cell[2] == 2:
                instr += count * plan.ser_instr
            else:
                instr += count * (plan.ser_instr + plan.ser_reflect_instr)
                value_fields += count * plan.n_prim
                reference_fields += count * plan.n_ref
                graph_bytes += count * plan.size_bytes
        instr += instr_dyn + len(data) * _INSTR_PER_STREAM_BYTE

        profile = WorkProfile()
        profile.instructions = instr
        profile.objects = objects
        profile.value_fields = value_fields
        profile.reference_fields = reference_fields
        profile.dependent_loads = dep
        profile.aux_random_accesses = aux
        profile.bytes_read = graph_bytes
        profile.bytes_written = len(data)
        sections = {
            _SECTION_MARKS: mark_count,
            _SECTION_CLASS_IDS: class_id_count,
        }
        if data_count:
            sections[_SECTION_DATA] = data_count
        if ref_count:
            sections[_SECTION_REFS] = ref_count
        stream = SerializedStream(
            format_name=self.name,
            data=data,
            sections=sections,
            object_count=objects,
            graph_bytes=graph_bytes,
        )
        stream.check_sections()
        return SerializationResult(stream, profile)

    # ---------------------------------------------------------------- deserialize

    def deserialize(
        self,
        stream: SerializedStream,
        heap: Heap,
        limits: Optional[DecodeLimits] = None,
    ) -> DeserializationResult:
        limits = resolve_limits(limits)
        if self.use_codegen:
            return self._deserialize_codegen(stream, heap, limits)
        if self.use_plans:
            return self._deserialize_planned(stream, heap, limits)
        limits.check_stream_bytes(len(stream.data))
        reader = StreamReader(stream.data)
        profile = WorkProfile()
        asm = ReflectAsmAccess()
        objects_by_id: list = []

        def read_primitive(kind: FieldKind):
            if kind is FieldKind.BOOLEAN:
                return bool(reader.read_u8())
            if kind is FieldKind.BYTE:
                raw = reader.read_u8()
                return raw - 256 if raw >= 128 else raw
            if kind in (FieldKind.CHAR, FieldKind.SHORT):
                raw = reader.read_u16()
                if kind is FieldKind.SHORT and raw >= 32768:
                    return raw - 65536
                return raw
            if kind in (FieldKind.INT, FieldKind.LONG):
                return reader.read_signed_varint()
            if kind is FieldKind.FLOAT:
                return struct.unpack("<f", reader.read_bytes(4))[0]
            if kind is FieldKind.DOUBLE:
                return reader.read_f64()
            raise FormatError(f"not a primitive kind: {kind}")

        def parse_object(mark: int):
            class_id = reader.read_varint()
            klass = self.registration.klass_of(class_id, offset=reader.position)
            limits.check_objects(len(objects_by_id) + 1)
            profile.objects += 1
            profile.allocations += 1
            profile.add_instructions(_INSTR_PER_OBJECT_DESER + _INSTR_PER_ALLOC)
            profile.aux_random_accesses += _AUX_ACCESSES_PER_OBJECT_DESER
            if mark == MARK_ARRAY:
                if not isinstance(klass, ArrayKlass):
                    raise FormatError("array marker with non-array class ID")
                length = reader.read_varint()
                limits.check_array_length(length)
                obj = heap.allocate(klass, length)
                objects_by_id.append(obj)
                if klass.element_kind.is_reference:
                    for index in range(length):
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_FIELD_DESER)
                        child = yield obj
                        obj.set_element(index, child)
                else:
                    # Decode the run, then one bulk heap write.
                    values = []
                    for index in range(length):
                        values.append(read_primitive(klass.element_kind))
                        profile.value_fields += 1
                        profile.add_instructions(_INSTR_PER_FIELD_DESER)
                    obj.set_elements(values)
            else:
                if not isinstance(klass, InstanceKlass):
                    raise FormatError("object marker with array class ID")
                obj = heap.allocate(klass)
                objects_by_id.append(obj)
                for index, descriptor in enumerate(klass.fields):
                    if descriptor.kind.is_reference:
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_FIELD_DESER)
                        child = yield obj
                        asm.set_field_by_index(obj, index, child)
                    else:
                        asm.set_field_by_index(
                            obj, index, read_primitive(descriptor.kind)
                        )
                        profile.value_fields += 1
                        profile.add_instructions(_INSTR_PER_FIELD_DESER)
            return

        def start_content():
            mark = reader.read_u8()
            if mark == MARK_NULL:
                return ("value", None)
            if mark == MARK_BACKREF:
                object_id = reader.read_varint()
                if object_id >= len(objects_by_id):
                    raise FormatError(f"forward object reference {object_id}")
                return ("value", objects_by_id[object_id])
            if mark in (MARK_OBJECT, MARK_ARRAY):
                return ("frame", parse_object(mark))
            raise FormatError(f"unexpected marker {mark:#x}")

        _UNSET = object()
        kind, payload = start_content()
        if kind == "value":
            raise FormatError("stream root must be an object")
        stack = [payload]
        object_count_at_frame = [len(objects_by_id)]
        pending = _UNSET
        root_obj: Optional[HeapObject] = None
        while stack:
            gen = stack[-1]
            try:
                if pending is _UNSET:
                    next(gen)
                else:
                    value, pending = pending, _UNSET
                    gen.send(value)
                kind, payload = start_content()
                if kind == "value":
                    pending = payload
                else:
                    limits.check_depth(len(stack) + 1)
                    stack.append(payload)
                    object_count_at_frame.append(len(objects_by_id))
            except StopIteration:
                stack.pop()
                frame_first = object_count_at_frame.pop()
                finished = objects_by_id[frame_first]
                pending = finished
                root_obj = finished

        if not isinstance(root_obj, HeapObject):
            raise FormatError("deserialization produced no root object")
        profile.bytes_read = len(stream.data)
        profile.bytes_written = ObjectGraph.from_root(root_obj).total_bytes
        profile.add_instructions(asm.cost.estimated_instructions())
        profile.add_instructions(len(stream.data) * _INSTR_PER_STREAM_BYTE)
        return DeserializationResult(root_obj, profile)

    # ----------------------------------------------------- deserialize (plan kernel)

    def _deserialize_planned(
        self, stream: SerializedStream, heap: Heap, limits: DecodeLimits
    ) -> DeserializationResult:
        """Compiled-plan deserialize: identical heap image and profile."""
        data = stream.data
        n_data = len(data)
        limits.check_stream_bytes(n_data)
        max_objects = limits.max_objects
        max_array_length = limits.max_array_length
        max_depth = limits.max_depth
        memory = heap.memory
        header_slots = heap.header_slots
        klass_of = self.registration.klass_of
        read_varint = P.read_varint
        read_signed = P.read_signed_varint
        pos = 0

        objects_by_id: List[HeapObject] = []
        plans_local: Dict[Klass, object] = {}

        objects = 0
        allocations = 0
        instr = 0
        reflect_instr = 0
        aux = 0
        value_fields = 0
        reference_fields = 0
        graph_bytes = 0

        def underflow(count: int) -> FormatError:
            return TruncatedStreamError(
                offset=pos, needed=count, available=n_data - pos
            )

        def run_dec_ops(ops, index: int, words: list) -> int:
            nonlocal pos
            op_count = len(ops)
            while index < op_count:
                op, field_index, extra = ops[index]
                if op == P.DOP_REF:
                    return index
                if op == P.DOP_VARINT:
                    value, pos = read_signed(data, pos)
                    words[field_index] = value & _MASK64
                elif op == P.DOP_WORDS:
                    nbytes = extra * 8
                    if pos + nbytes > n_data:
                        raise underflow(nbytes)
                    words[field_index:field_index + extra] = struct.unpack_from(
                        f"<{extra}Q", data, pos
                    )
                    pos += nbytes
                elif op == P.DOP_FLOAT:
                    if pos + 4 > n_data:
                        raise underflow(4)
                    words[field_index] = _U64.unpack(
                        _F64.pack(_F32.unpack_from(data, pos)[0])
                    )[0]
                    pos += 4
                elif op == P.DOP_BOOL:
                    if pos >= n_data:
                        raise underflow(1)
                    words[field_index] = 1 if data[pos] else 0
                    pos += 1
                elif op == P.DOP_BYTE:
                    if pos >= n_data:
                        raise underflow(1)
                    raw = data[pos]
                    pos += 1
                    words[field_index] = (
                        raw if raw < 128 else (raw - 256) & _MASK64
                    )
                elif op == P.DOP_CHAR:
                    if pos + 2 > n_data:
                        raise underflow(2)
                    words[field_index] = data[pos] | (data[pos + 1] << 8)
                    pos += 2
                else:  # DOP_SHORT
                    if pos + 2 > n_data:
                        raise underflow(2)
                    raw = data[pos] | (data[pos + 1] << 8)
                    pos += 2
                    words[field_index] = (
                        raw if raw < 32768 else (raw - 65536) & _MASK64
                    )
                index += 1
            return index

        def start_content():
            nonlocal pos, objects, allocations, instr, reflect_instr, aux
            nonlocal value_fields, reference_fields, graph_bytes
            if pos >= n_data:
                raise underflow(1)
            mark = data[pos]
            pos += 1
            if mark == MARK_NULL:
                return 0, None
            if mark == MARK_BACKREF:
                object_id, pos = read_varint(data, pos)
                if object_id >= len(objects_by_id):
                    raise FormatError(f"forward object reference {object_id}")
                return 0, objects_by_id[object_id]
            if mark not in (MARK_OBJECT, MARK_ARRAY):
                raise FormatError(f"unexpected marker {mark:#x}")
            class_id, pos = read_varint(data, pos)
            klass = klass_of(class_id, offset=pos)
            plan = plans_local.get(klass)
            if plan is None:
                plan = P.plan_for(self.name, klass, header_slots)
                plans_local[klass] = plan
            objects += 1
            if objects > max_objects:
                limits.check_objects(objects)
            allocations += 1
            aux += plan.de_aux
            if mark == MARK_ARRAY:
                if not isinstance(klass, ArrayKlass):
                    raise FormatError("array marker with non-array class ID")
                length, pos = read_varint(data, pos)
                if length > max_array_length:
                    limits.check_array_length(length)
                obj = heap.allocate(klass, length)
                objects_by_id.append(obj)
                instr += plan.de_instr + length * plan.de_elem_instr
                graph_bytes += obj.size_bytes
                if plan.is_ref:
                    reference_fields += length
                    if length == 0:
                        return 0, obj
                    return 1, [1, obj, [0] * length, 0]
                value_fields += length
                if length == 0:
                    return 0, obj
                element_base = obj.fields_base + 8
                if plan.copy_elements:
                    nbytes = length * plan.element_width
                    if pos + nbytes > n_data:
                        raise underflow(nbytes)
                    memory.write(element_base, data[pos:pos + nbytes])
                    pos += nbytes
                else:  # INT/LONG arrays: zig-zag varint per element
                    values = []
                    for _ in range(length):
                        value, pos = read_signed(data, pos)
                        values.append(value)
                    memory.write(
                        element_base,
                        struct.pack(f"<{length}{plan.varint_code}", *values),
                    )
                return 0, obj
            if not isinstance(klass, InstanceKlass):
                raise FormatError("object marker with array class ID")
            obj = heap.allocate(klass)
            objects_by_id.append(obj)
            instr += plan.de_instr
            reflect_instr += plan.de_reflect_instr
            value_fields += plan.n_prim
            reference_fields += plan.n_ref
            graph_bytes += plan.size_bytes
            words = [0] * plan.field_count
            if plan.n_ref == 0:
                run_dec_ops(plan.dec_ops, 0, words)
                if words:
                    memory.write_words(obj.fields_base, words)
                return 0, obj
            return 1, [0, obj, plan.dec_ops, 0, words]

        _UNSET = object()
        kind, payload = start_content()
        if kind == 0:
            if payload is None:
                raise FormatError("stream root must be an object")
            root_obj = payload
            stack: List[list] = []
        else:
            stack = [payload]
            root_obj = payload[1]
        pending = _UNSET
        while stack:
            frame = stack[-1]
            descend = None
            if frame[0] == 0:  # instance frame
                obj, ops, words = frame[1], frame[2], frame[4]
                index = frame[3]
                if pending is not _UNSET:
                    child, pending = pending, _UNSET
                    words[ops[index][1]] = 0 if child is None else child.address
                    index += 1
                op_count = len(ops)
                while True:
                    index = run_dec_ops(ops, index, words)
                    if index >= op_count:
                        break
                    kind, payload = start_content()
                    if kind == 0:
                        words[ops[index][1]] = (
                            0 if payload is None else payload.address
                        )
                        index += 1
                    else:
                        descend = payload
                        break
                frame[3] = index
                if descend is None:
                    if words:
                        memory.write_words(obj.fields_base, words)
                    stack.pop()
                    pending = obj
            else:  # reference-array frame
                obj, words = frame[1], frame[2]
                index = frame[3]
                if pending is not _UNSET:
                    child, pending = pending, _UNSET
                    words[index] = 0 if child is None else child.address
                    index += 1
                count = len(words)
                while index < count:
                    kind, payload = start_content()
                    if kind == 0:
                        words[index] = 0 if payload is None else payload.address
                        index += 1
                    else:
                        descend = payload
                        break
                frame[3] = index
                if descend is None:
                    memory.write_words(obj.fields_base + 8, words)
                    stack.pop()
                    pending = obj
            if descend is not None:
                if len(stack) >= max_depth:
                    limits.check_depth(len(stack) + 1)
                stack.append(descend)

        instr += reflect_instr + n_data * _INSTR_PER_STREAM_BYTE
        profile = WorkProfile()
        profile.instructions = instr
        profile.objects = objects
        profile.allocations = allocations
        profile.value_fields = value_fields
        profile.reference_fields = reference_fields
        profile.aux_random_accesses = aux
        profile.bytes_read = n_data
        profile.bytes_written = graph_bytes
        return DeserializationResult(root_obj, profile)

    # -------------------------------------------------- deserialize (codegen kernel)

    def _deserialize_codegen(
        self, stream: SerializedStream, heap: Heap, limits: DecodeLimits
    ) -> DeserializationResult:
        """Generated-kernel deserialize: identical heap image and profile.

        Field segments run as generated straight-line code with inlined
        one-byte varint fast paths; class-ID and length varints get the
        same fast path inline here. Shape-constant profile deltas fold
        per cell at the end.
        """
        data = stream.data
        n_data = len(data)
        limits.check_stream_bytes(n_data)
        max_objects = limits.max_objects
        max_array_length = limits.max_array_length
        max_depth = limits.max_depth
        memory = heap.memory
        header_slots = heap.header_slots
        klass_of = self.registration.klass_of
        read_varint = P.read_varint
        read_signed = P.read_signed_varint
        pos = 0

        objects_by_id: List[HeapObject] = []

        # klass -> [plan, count, kind, leaf, steps, field_count]
        cells: Dict[Klass, list] = {}

        objects = 0
        instr_dyn = 0
        value_fields_dyn = 0
        reference_fields_dyn = 0
        graph_bytes_dyn = 0

        def underflow(count: int) -> FormatError:
            return TruncatedStreamError(
                offset=pos, needed=count, available=n_data - pos
            )

        def cell_for(klass: Klass) -> list:
            plan = P.plan_for(self.name, klass, header_slots)
            if klass.is_array:
                cell = [plan, 0, 2, None, None, 0]
            else:
                kernel = CG.decode_kernel_for(self.name, klass, header_slots, plan)
                kind = 0 if plan.n_ref == 0 else 1
                cell = [plan, 0, kind, kernel.leaf, kernel.steps, plan.field_count]
            cells[klass] = cell
            return cell

        def start_content():
            nonlocal pos, objects, instr_dyn, value_fields_dyn
            nonlocal reference_fields_dyn, graph_bytes_dyn
            if pos >= n_data:
                raise underflow(1)
            mark = data[pos]
            pos += 1
            if mark == MARK_NULL:
                return 0, None
            if mark == MARK_BACKREF:
                if pos < n_data and data[pos] < 128:  # 1-byte varint fast path
                    object_id = data[pos]
                    pos += 1
                else:
                    object_id, pos = read_varint(data, pos)
                if object_id >= len(objects_by_id):
                    raise FormatError(f"forward object reference {object_id}")
                return 0, objects_by_id[object_id]
            if mark not in (MARK_OBJECT, MARK_ARRAY):
                raise FormatError(f"unexpected marker {mark:#x}")
            if pos < n_data and data[pos] < 128:  # 1-byte varint fast path
                class_id = data[pos]
                pos += 1
            else:
                class_id, pos = read_varint(data, pos)
            klass = klass_of(class_id, offset=pos)
            cell = cells.get(klass)
            if cell is None:
                cell = cell_for(klass)
            objects += 1
            if objects > max_objects:
                limits.check_objects(objects)
            cell[1] += 1
            kind = cell[2]
            if mark == MARK_ARRAY:
                if kind != 2:
                    raise FormatError("array marker with non-array class ID")
                plan = cell[0]
                length, pos = read_varint(data, pos)
                if length > max_array_length:
                    limits.check_array_length(length)
                obj = heap.allocate(klass, length)
                objects_by_id.append(obj)
                instr_dyn += length * plan.de_elem_instr
                graph_bytes_dyn += obj.size_bytes
                if plan.is_ref:
                    reference_fields_dyn += length
                    if length == 0:
                        return 0, obj
                    return 1, [1, obj, [0] * length, 0]
                value_fields_dyn += length
                if length == 0:
                    return 0, obj
                element_base = obj.fields_base + 8
                if plan.copy_elements:
                    nbytes = length * plan.element_width
                    if pos + nbytes > n_data:
                        raise underflow(nbytes)
                    memory.write(element_base, data[pos:pos + nbytes])
                    pos += nbytes
                else:  # INT/LONG arrays: zig-zag varint per element
                    values = []
                    for _ in range(length):
                        value, pos = read_signed(data, pos)
                        values.append(value)
                    memory.write(
                        element_base,
                        struct.pack(f"<{length}{plan.varint_code}", *values),
                    )
                return 0, obj
            if kind == 2:
                raise FormatError("object marker with array class ID")
            obj = heap.allocate(klass)
            objects_by_id.append(obj)
            words = [0] * cell[5]
            if kind == 0:  # leaf instance: one generated straight-line call
                pos = cell[3](data, pos, words)
                if words:
                    memory.write_words(obj.fields_base, words)
                return 0, obj
            return 1, [0, obj, cell[4], 0, words]

        _UNSET = object()
        kind, payload = start_content()
        if kind == 0:
            if payload is None:
                raise FormatError("stream root must be an object")
            root_obj = payload
            stack: List[list] = []
        else:
            stack = [payload]
            root_obj = payload[1]
        pending = _UNSET
        while stack:
            frame = stack[-1]
            descend = None
            if frame[0] == 0:  # instance frame: segments + ref field indices
                obj, steps, words = frame[1], frame[2], frame[4]
                index = frame[3]
                if pending is not _UNSET:
                    child, pending = pending, _UNSET
                    words[steps[index]] = 0 if child is None else child.address
                    index += 1
                step_count = len(steps)
                while index < step_count:
                    step = steps[index]
                    if step.__class__ is int:  # reference field index
                        kind, payload = start_content()
                        if kind == 0:
                            words[step] = 0 if payload is None else payload.address
                            index += 1
                        else:
                            descend = payload
                            break
                    else:
                        pos = step(data, pos, words)
                        index += 1
                frame[3] = index
                if descend is None:
                    if words:
                        memory.write_words(obj.fields_base, words)
                    stack.pop()
                    pending = obj
            else:  # reference-array frame
                obj, words = frame[1], frame[2]
                index = frame[3]
                if pending is not _UNSET:
                    child, pending = pending, _UNSET
                    words[index] = 0 if child is None else child.address
                    index += 1
                count = len(words)
                while index < count:
                    kind, payload = start_content()
                    if kind == 0:
                        words[index] = 0 if payload is None else payload.address
                        index += 1
                    else:
                        descend = payload
                        break
                frame[3] = index
                if descend is None:
                    memory.write_words(obj.fields_base + 8, words)
                    stack.pop()
                    pending = obj
            if descend is not None:
                if len(stack) >= max_depth:
                    limits.check_depth(len(stack) + 1)
                stack.append(descend)

        instr = instr_dyn
        aux = 0
        value_fields = value_fields_dyn
        reference_fields = reference_fields_dyn
        graph_bytes = graph_bytes_dyn
        for cell in cells.values():
            count = cell[1]
            plan = cell[0]
            aux += count * plan.de_aux
            if cell[2] == 2:
                instr += count * plan.de_instr
            else:
                instr += count * (plan.de_instr + plan.de_reflect_instr)
                value_fields += count * plan.n_prim
                reference_fields += count * plan.n_ref
                graph_bytes += count * plan.size_bytes
        instr += n_data * _INSTR_PER_STREAM_BYTE

        profile = WorkProfile()
        profile.instructions = instr
        profile.objects = objects
        profile.allocations = objects
        profile.value_fields = value_fields
        profile.reference_fields = reference_fields
        profile.aux_random_accesses = aux
        profile.bytes_read = n_data
        profile.bytes_written = graph_bytes
        return DeserializationResult(root_obj, profile)
