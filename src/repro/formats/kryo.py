"""Kryo-style serialization (paper Figure 1(c)).

Kryo's optimizations over Java S/D, all modelled here:

* **Integer class numbering** — every class (including primitives/arrays)
  must be registered up front; the stream stores a small varint class ID
  instead of name strings. The *same* registry must be used to deserialize.
* **Null-check byte** — each object slot starts with a 1-byte marker:
  null, back reference, or new object.
* **Optimized reflection** — field access goes through ReflectASM-style
  index tables (:class:`~repro.jvm.reflection.ReflectAsmAccess`), avoiding
  string lookups entirely.
* **Varint-packed integers** — INT/LONG field values are zig-zag varints.

Stream grammar:

    stream  := content
    content := MARK_NULL
             | MARK_BACKREF objectId(varint)
             | MARK_OBJECT classId(varint) fields...
             | MARK_ARRAY  classId(varint) length(varint) elements...

Reference fields and reference-array elements recurse into ``content``.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional

from repro.common.errors import FormatError
from repro.formats.base import (
    DeserializationResult,
    SerializationResult,
    SerializedStream,
    Serializer,
    WorkProfile,
)
from repro.formats.registry import ClassRegistration
from repro.formats.streams import StreamReader, StreamWriter
from repro.jvm.graph import ObjectGraph
from repro.jvm.heap import Heap, HeapObject
from repro.jvm.klass import ArrayKlass, FieldKind, InstanceKlass
from repro.jvm.reflection import ReflectAsmAccess

MARK_NULL = 0x00
MARK_BACKREF = 0x01
MARK_OBJECT = 0x02
MARK_ARRAY = 0x03

_SECTION_MARKS = "null_checks"
_SECTION_CLASS_IDS = "class_ids"
_SECTION_DATA = "field_data"
_SECTION_REFS = "back_references"

# Calibrated against the paper's ratios: Kryo serialization is ~2.3x
# faster than Java S/D (still paying graph traversal and the reference-
# resolver identity map), while deserialization is a tight streaming loop
# ~52x faster than Java's reflective one (Figure 10).
_INSTR_PER_OBJECT = 3900  # serializer dispatch + reference-resolver insert
_INSTR_PER_PRIMITIVE = 80  # ReflectASM accessor + varint/width write
_INSTR_PER_REFERENCE = 160  # resolver lookup + marker
_INSTR_PER_OBJECT_DESER = 420  # registry fetch + resolver append
_INSTR_PER_FIELD_DESER = 45  # ReflectASM indexed set
_INSTR_PER_ALLOC = 70  # instantiator fast path
_INSTR_PER_STREAM_BYTE = 1
_AUX_ACCESSES_PER_OBJECT_SER = 6  # identity-map probe + insert
_AUX_ACCESSES_PER_OBJECT_DESER = 1  # resolver table append


class KryoSerializer(Serializer):
    """Kryo with mandatory type registration ("Kryo" in the paper)."""

    name = "kryo"

    def __init__(self, registration: Optional[ClassRegistration] = None):
        self.registration = (
            registration if registration is not None else ClassRegistration()
        )

    def register(self, klass) -> int:
        """Kryo's ``register(Class)``: required before S/D of that type."""
        return self.registration.register(klass)

    # ------------------------------------------------------------------ serialize

    def serialize(self, root: HeapObject) -> SerializationResult:
        writer = StreamWriter()
        profile = WorkProfile()
        asm = ReflectAsmAccess()
        object_ids: Dict[int, int] = {}

        def write_primitive(kind: FieldKind, value) -> None:
            if kind is FieldKind.BOOLEAN:
                writer.write_u8(1 if value else 0, _SECTION_DATA)
            elif kind is FieldKind.BYTE:
                writer.write_bytes(
                    (int(value) & 0xFF).to_bytes(1, "little"), _SECTION_DATA
                )
            elif kind in (FieldKind.CHAR, FieldKind.SHORT):
                writer.write_u16(int(value) & 0xFFFF, _SECTION_DATA)
            elif kind in (FieldKind.INT, FieldKind.LONG):
                writer.write_signed_varint(int(value), _SECTION_DATA)
            elif kind is FieldKind.FLOAT:
                writer.write_bytes(struct.pack("<f", float(value)), _SECTION_DATA)
            elif kind is FieldKind.DOUBLE:
                writer.write_f64(float(value), _SECTION_DATA)
            else:  # pragma: no cover - guarded by callers
                raise FormatError(f"not a primitive kind: {kind}")
            profile.value_fields += 1
            profile.add_instructions(_INSTR_PER_PRIMITIVE)

        def emit_object(obj: HeapObject):
            profile.objects += 1
            profile.add_instructions(_INSTR_PER_OBJECT)
            profile.aux_random_accesses += _AUX_ACCESSES_PER_OBJECT_SER
            profile.dependent_loads += 2
            class_id = self.registration.id_of(obj.klass)
            object_ids[obj.address] = len(object_ids)
            if isinstance(obj.klass, ArrayKlass):
                writer.write_u8(MARK_ARRAY, _SECTION_MARKS)
                writer.write_varint(class_id, _SECTION_CLASS_IDS)
                writer.write_varint(obj.length, _SECTION_DATA)
                if obj.klass.element_kind.is_reference:
                    for index in range(obj.length):
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_REFERENCE)
                        yield obj.get_element(index)
                else:
                    # One bulk heap read for the whole element storage.
                    element_kind = obj.klass.element_kind
                    for value in obj.get_elements():
                        write_primitive(element_kind, value)
            else:
                klass = obj.klass
                assert isinstance(klass, InstanceKlass)
                writer.write_u8(MARK_OBJECT, _SECTION_MARKS)
                writer.write_varint(class_id, _SECTION_CLASS_IDS)
                for index, descriptor in enumerate(klass.fields):
                    if descriptor.kind.is_reference:
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_REFERENCE)
                        profile.dependent_loads += 1
                        yield asm.get_field_by_index(obj, index)
                    else:
                        write_primitive(
                            descriptor.kind, asm.get_field_by_index(obj, index)
                        )

        stack = [emit_object(root)]
        while stack:
            try:
                child = next(stack[-1])
            except StopIteration:
                stack.pop()
                continue
            if child is None:
                writer.write_u8(MARK_NULL, _SECTION_MARKS)
            elif child.address in object_ids:
                writer.write_u8(MARK_BACKREF, _SECTION_MARKS)
                writer.write_varint(object_ids[child.address], _SECTION_REFS)
            else:
                stack.append(emit_object(child))

        data = writer.getvalue()
        profile.add_instructions(asm.cost.estimated_instructions())
        profile.add_instructions(len(data) * _INSTR_PER_STREAM_BYTE)
        profile.bytes_read = ObjectGraph.from_root(root).total_bytes
        profile.bytes_written = len(data)
        stream = SerializedStream(
            format_name=self.name,
            data=data,
            sections=dict(writer.sections),
            object_count=profile.objects,
            graph_bytes=profile.bytes_read,
        )
        stream.check_sections()
        return SerializationResult(stream, profile)

    # ---------------------------------------------------------------- deserialize

    def deserialize(
        self, stream: SerializedStream, heap: Heap
    ) -> DeserializationResult:
        reader = StreamReader(stream.data)
        profile = WorkProfile()
        asm = ReflectAsmAccess()
        objects_by_id: list = []

        def read_primitive(kind: FieldKind):
            if kind is FieldKind.BOOLEAN:
                return bool(reader.read_u8())
            if kind is FieldKind.BYTE:
                raw = reader.read_u8()
                return raw - 256 if raw >= 128 else raw
            if kind in (FieldKind.CHAR, FieldKind.SHORT):
                raw = reader.read_u16()
                if kind is FieldKind.SHORT and raw >= 32768:
                    return raw - 65536
                return raw
            if kind in (FieldKind.INT, FieldKind.LONG):
                return reader.read_signed_varint()
            if kind is FieldKind.FLOAT:
                return struct.unpack("<f", reader.read_bytes(4))[0]
            if kind is FieldKind.DOUBLE:
                return reader.read_f64()
            raise FormatError(f"not a primitive kind: {kind}")

        def parse_object(mark: int):
            class_id = reader.read_varint()
            klass = self.registration.klass_of(class_id)
            profile.objects += 1
            profile.allocations += 1
            profile.add_instructions(_INSTR_PER_OBJECT_DESER + _INSTR_PER_ALLOC)
            profile.aux_random_accesses += _AUX_ACCESSES_PER_OBJECT_DESER
            if mark == MARK_ARRAY:
                if not isinstance(klass, ArrayKlass):
                    raise FormatError("array marker with non-array class ID")
                length = reader.read_varint()
                obj = heap.allocate(klass, length)
                objects_by_id.append(obj)
                if klass.element_kind.is_reference:
                    for index in range(length):
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_FIELD_DESER)
                        child = yield obj
                        obj.set_element(index, child)
                else:
                    # Decode the run, then one bulk heap write.
                    values = []
                    for index in range(length):
                        values.append(read_primitive(klass.element_kind))
                        profile.value_fields += 1
                        profile.add_instructions(_INSTR_PER_FIELD_DESER)
                    obj.set_elements(values)
            else:
                if not isinstance(klass, InstanceKlass):
                    raise FormatError("object marker with array class ID")
                obj = heap.allocate(klass)
                objects_by_id.append(obj)
                for index, descriptor in enumerate(klass.fields):
                    if descriptor.kind.is_reference:
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_FIELD_DESER)
                        child = yield obj
                        asm.set_field_by_index(obj, index, child)
                    else:
                        asm.set_field_by_index(
                            obj, index, read_primitive(descriptor.kind)
                        )
                        profile.value_fields += 1
                        profile.add_instructions(_INSTR_PER_FIELD_DESER)
            return

        def start_content():
            mark = reader.read_u8()
            if mark == MARK_NULL:
                return ("value", None)
            if mark == MARK_BACKREF:
                object_id = reader.read_varint()
                if object_id >= len(objects_by_id):
                    raise FormatError(f"forward object reference {object_id}")
                return ("value", objects_by_id[object_id])
            if mark in (MARK_OBJECT, MARK_ARRAY):
                return ("frame", parse_object(mark))
            raise FormatError(f"unexpected marker {mark:#x}")

        _UNSET = object()
        kind, payload = start_content()
        if kind == "value":
            raise FormatError("stream root must be an object")
        stack = [payload]
        object_count_at_frame = [len(objects_by_id)]
        pending = _UNSET
        root_obj: Optional[HeapObject] = None
        while stack:
            gen = stack[-1]
            try:
                if pending is _UNSET:
                    next(gen)
                else:
                    value, pending = pending, _UNSET
                    gen.send(value)
                kind, payload = start_content()
                if kind == "value":
                    pending = payload
                else:
                    stack.append(payload)
                    object_count_at_frame.append(len(objects_by_id))
            except StopIteration:
                stack.pop()
                frame_first = object_count_at_frame.pop()
                finished = objects_by_id[frame_first]
                pending = finished
                root_obj = finished

        if not isinstance(root_obj, HeapObject):
            raise FormatError("deserialization produced no root object")
        profile.bytes_read = len(stream.data)
        profile.bytes_written = ObjectGraph.from_root(root_obj).total_bytes
        profile.add_instructions(asm.cost.estimated_instructions())
        profile.add_instructions(len(stream.data) * _INSTR_PER_STREAM_BYTE)
        return DeserializationResult(root_obj, profile)
