"""Chunked, resumable serialization walks with bounded arenas.

Every serializer in the repo can already produce its byte stream three
ways (interpreter, plan, codegen) with byte-for-byte identical output.
This module adds a fourth *execution shape* — not a fifth format tier:
the same codegen kernels (java/kryo), plan gathers (cereal) and
interpreter loop (skyway) run inside **generator walks** whose explicit
frame stacks are the suspension state. The walk writes into a
:class:`~repro.formats.plans.ChunkingBuffer` that carves the stream into
fixed-size arenas from a :class:`~repro.common.bufpool.ChunkArenaPool`,
and yields whenever a chunk seals; an
:class:`~repro.formats.plans.EncodeCursor` pulls one chunk at a time, so
the encoder never runs ahead of its consumer by more than the pool
population — backpressure reaches the plan executor itself.

Resumability is structural, not re-entrant: suspending at a chunk
boundary costs one generator yield, and resuming continues from the
exact frame/index/offset where the walk stopped — the object graph is
never re-walked. Two frame kinds exist purely to bound how much a single
step can write: primitive-array bulk copies advance in chunk-sized
slices (kind 2) and Kryo varint arrays encode element by element
(kind 3), so no single uninterruptible step overshoots an arena by more
than one shape's worth of bytes
(:attr:`~repro.formats.codegen.EncodeKernel.max_write_bytes`).

Byte identity: the concatenation of a walk's chunks is identical to the
single-shot ``serialize()`` output for every format and every chunk
size, including sizes of 1 byte and sizes larger than the payload —
``tests/test_streaming.py`` fuzzes this against the interpreter oracle.
Profiles and section splits are identical too, so the CPU cost model
prices a chunked encode exactly like a whole-stream one (the win is
*when* bytes become available, not how many instructions produce them).

The receiver side is :class:`ChunkAssembler`: CRC-framed chunks are
verified in sequence with :class:`~repro.formats.limits.DecodeLimits`
budgets enforced incrementally — a hostile or clipped stream is rejected
at the offending chunk, before later chunks are even read.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro.common.errors import (
    CorruptionError,
    FormatError,
    RegistrationError,
    TruncatedStreamError,
)
from repro.formats import codegen as CG
from repro.formats import plans as P
from repro.formats.base import WorkProfile
from repro.formats.limits import DecodeLimits, resolve_limits
from repro.formats.plans import (
    ChunkedEncodeSummary,
    ChunkingBuffer,
    EncodeCursor,
)
from repro.formats.streams import frame_chunk, unframe_chunk
from repro.jvm.graph import ObjectGraph, SlotRunGraph
from repro.jvm.heap import HeapObject, NULL_ADDRESS
from repro.jvm.klass import Klass

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def _check_sections(name: str, sections: Dict[str, int], total: int) -> None:
    declared = sum(sections.values())
    if declared != total:
        raise FormatError(
            f"{name} chunked walk: sections sum to {declared}, "
            f"stream is {total} bytes"
        )


def _stream_slices(out: ChunkingBuffer, data) -> None:
    """Write a large byte blob in chunk-sized slices, yielding between
    slices so the cursor can drain sealed chunks (bounds arena demand)."""
    step = out.chunk_bytes
    for offset in range(0, len(data), step):
        out += data[offset:offset + step]
        yield


# -- java ----------------------------------------------------------------------------


def _java_chunk_walk(serializer, root: HeapObject, out: ChunkingBuffer):
    """Chunked Java serialize: the codegen driver re-shaped as a generator.

    Mirrors ``JavaSerializer._serialize_codegen`` exactly — same cells,
    same fused prefixes, same generated kernels, same end-of-walk fold —
    with yields at chunk boundaries and primitive-array copies advanced
    as kind-2 frames instead of one unbounded append.
    """
    from repro.formats import javaser as J

    heap = root.heap
    read = heap.memory.read
    view = heap.memory.view
    object_at = heap.object_at
    header_slots = heap.header_slots
    chunk_bytes = out.chunk_bytes

    out += J._STREAM_HEADER

    handles: Dict[int, int] = {}
    class_handles: Dict[str, int] = {}
    next_handle = 0

    ref_count = 0
    data_dyn = 0
    instr_dyn = 0
    value_fields_dyn = 0
    reference_fields_dyn = 0
    graph_bytes_dyn = 0

    # klass -> [prefix, count, kind, plan, leaf, steps, size, wrote_desc]
    cells: Dict[Klass, list] = {}

    def make_cell(klass: Klass) -> list:
        nonlocal out, next_handle
        plan = P.plan_for(serializer.name, klass, header_slots)
        is_array = klass.is_array
        tag = J.TC_ARRAY if is_array else J.TC_OBJECT
        class_handle = class_handles.get(klass.name)
        if class_handle is None:
            out.append(tag)
            out += plan.desc_blob
            class_handle = next_handle
            class_handles[klass.name] = class_handle
            next_handle += 1
            wrote_desc = True
        else:
            out.append(tag)
            out.append(J.TC_REFERENCE)
            out += _U32.pack(class_handle)
            wrote_desc = False
        prefix = bytes((tag, J.TC_REFERENCE)) + _U32.pack(class_handle)
        if is_array:
            cell = [prefix, 1, 2, plan, None, None, 0, wrote_desc]
        else:
            kernel = CG.encode_kernel_for(
                serializer.name, klass, header_slots, plan
            )
            kind = 0 if plan.n_ref == 0 else 1
            cell = [
                prefix, 1, kind, plan,
                kernel.leaf, kernel.steps, plan.size_bytes, wrote_desc,
            ]
        cells[klass] = cell
        return cell

    def emit(obj: HeapObject):
        nonlocal out, next_handle, ref_count, data_dyn, instr_dyn
        nonlocal value_fields_dyn, reference_fields_dyn, graph_bytes_dyn
        klass = obj.klass
        cell = cells.get(klass)
        if cell is None:
            cell = make_cell(klass)
        else:
            out += cell[0]
            cell[1] += 1
        handles[obj.address] = next_handle
        next_handle += 1
        kind = cell[2]
        if kind == 0:
            cell[4](out, view(obj.address, cell[6]))
            return None
        if kind == 1:
            return [0, cell[5], 0, view(obj.address, cell[6])]
        plan = cell[3]
        length = obj.length
        out += _U32.pack(length)
        instr_dyn += length * plan.ser_elem_instr
        graph_bytes_dyn += obj.size_bytes
        element_base = obj.fields_base + 8
        if plan.is_ref:
            reference_fields_dyn += length
            if length:
                addresses = struct.unpack(
                    f"<{length}Q", read(element_base, length * 8)
                )
                return [1, addresses, 0]
            return None
        value_fields_dyn += length
        nbytes = length * plan.element_width
        if nbytes:
            data_dyn += nbytes
            return [2, element_base, nbytes, 0]  # incremental bulk copy
        return None

    frame = emit(root)
    stack: List[list] = [frame] if frame is not None else []
    while stack:
        if out.ready_count:
            yield
        frame = stack[-1]
        descend = None
        kind = frame[0]
        if kind == 0:  # instance: generated segments + ref offsets
            steps = frame[1]
            index = frame[2]
            raw = frame[3]
            step_count = len(steps)
            while index < step_count:
                if out.ready_count:
                    frame[2] = index
                    yield
                step = steps[index]
                index += 1
                if step.__class__ is int:
                    address = _U64.unpack_from(raw, step)[0]
                    if address == 0:
                        out.append(J.TC_NULL)
                        ref_count += 1
                    else:
                        handle = handles.get(address)
                        if handle is not None:
                            out.append(J.TC_REFERENCE)
                            out += _U32.pack(handle)
                            ref_count += 5
                        else:
                            descend = emit(object_at(address))
                            if descend is not None:
                                break
                else:
                    step(out, raw)
            frame[2] = index
        elif kind == 1:  # reference array
            addresses = frame[1]
            index = frame[2]
            count = len(addresses)
            while index < count:
                if out.ready_count:
                    frame[2] = index
                    yield
                address = addresses[index]
                index += 1
                if address == 0:
                    out.append(J.TC_NULL)
                    ref_count += 1
                else:
                    handle = handles.get(address)
                    if handle is not None:
                        out.append(J.TC_REFERENCE)
                        out += _U32.pack(handle)
                        ref_count += 5
                    else:
                        descend = emit(object_at(address))
                        if descend is not None:
                            break
            frame[2] = index
        else:  # kind 2: primitive-array bulk copy, chunk-sized slices
            element_base = frame[1]
            nbytes = frame[2]
            offset = frame[3]
            while offset < nbytes:
                if out.ready_count:
                    frame[3] = offset
                    yield
                step_n = min(chunk_bytes, nbytes - offset)
                out += read(element_base + offset, step_n)
                offset += step_n
            frame[3] = offset
        if descend is not None:
            stack.append(descend)
        else:
            stack.pop()

    total = len(out)

    objects = 0
    instr = 0
    aux = 0
    dep = 0
    value_fields = value_fields_dyn
    reference_fields = reference_fields_dyn
    data_count = data_dyn
    graph_bytes = graph_bytes_dyn
    meta_count = 4
    type_count = 0
    for cell in cells.values():
        count = cell[1]
        plan = cell[3]
        objects += count
        aux += count * plan.ser_aux
        dep += count * plan.ser_dep
        if cell[2] == 2:
            instr += count * plan.ser_instr
            meta_count += count * 5
        else:
            instr += count * (plan.ser_instr + plan.ser_reflect_instr)
            meta_count += count
            value_fields += count * plan.n_prim
            reference_fields += count * plan.n_ref
            data_count += count * plan.enc_data_bytes
            graph_bytes += count * plan.size_bytes
        if cell[7]:
            instr += plan.desc_ser_instr
            meta_count += plan.desc_meta_bytes
            type_count += plan.desc_type_bytes
            ref_count += 5 * (count - 1)
        else:
            ref_count += 5 * count
    instr += instr_dyn + total * J._INSTR_PER_STREAM_BYTE

    profile = WorkProfile()
    profile.instructions = instr
    profile.objects = objects
    profile.value_fields = value_fields
    profile.reference_fields = reference_fields
    profile.dependent_loads = dep
    profile.aux_random_accesses = aux
    profile.bytes_read = graph_bytes
    profile.bytes_written = total
    sections = {J._SECTION_META: meta_count, J._SECTION_TYPES: type_count}
    if data_count:
        sections[J._SECTION_DATA] = data_count
    if ref_count:
        sections[J._SECTION_REFS] = ref_count
    _check_sections(serializer.name, sections, total)
    return ChunkedEncodeSummary(
        serializer.name, total, 0, sections, profile, objects, graph_bytes
    )


# -- kryo ----------------------------------------------------------------------------


def _kryo_chunk_walk(serializer, root: HeapObject, out: ChunkingBuffer):
    """Chunked Kryo serialize, mirroring ``_serialize_codegen`` — varint
    arrays advance element-by-element as kind-3 frames."""
    from repro.formats import kryo as K

    heap = root.heap
    read = heap.memory.read
    view = heap.memory.view
    object_at = heap.object_at
    header_slots = heap.header_slots
    id_of = serializer.registration.id_of
    append_varint = P.append_varint
    append_signed = P.append_signed_varint
    chunk_bytes = out.chunk_bytes

    object_ids: Dict[int, int] = {}
    next_object_id = 0

    mark_dyn = 0
    ref_count = 0
    data_dyn = 0
    instr_dyn = 0
    value_fields_dyn = 0
    reference_fields_dyn = 0
    graph_bytes_dyn = 0

    cells: Dict[Klass, list] = {}

    def make_cell(klass: Klass) -> list:
        nonlocal out
        plan = P.plan_for(serializer.name, klass, header_slots)
        id_buffer = bytearray()
        id_buffer.append(K.MARK_ARRAY if klass.is_array else K.MARK_OBJECT)
        append_varint(id_buffer, id_of(klass))
        prefix = bytes(id_buffer)
        if klass.is_array:
            cell = [prefix, 0, 2, plan, None, None, 0]
        else:
            kernel = CG.encode_kernel_for(
                serializer.name, klass, header_slots, plan
            )
            kind = 0 if plan.n_ref == 0 else 1
            cell = [
                prefix, 0, kind, plan,
                kernel.leaf, kernel.steps, plan.size_bytes,
            ]
        cells[klass] = cell
        return cell

    def emit(obj: HeapObject):
        nonlocal out, next_object_id, data_dyn, instr_dyn
        nonlocal value_fields_dyn, reference_fields_dyn, graph_bytes_dyn
        klass = obj.klass
        cell = cells.get(klass)
        if cell is None:
            cell = make_cell(klass)
        out += cell[0]
        cell[1] += 1
        object_ids[obj.address] = next_object_id
        next_object_id += 1
        kind = cell[2]
        if kind == 0:
            data_dyn += cell[4](out, view(obj.address, cell[6]))
            return None
        if kind == 1:
            return [0, cell[5], 0, view(obj.address, cell[6])]
        plan = cell[3]
        length = obj.length
        data_dyn += append_varint(out, length)
        instr_dyn += length * plan.ser_elem_instr
        graph_bytes_dyn += obj.size_bytes
        element_base = obj.fields_base + 8
        if plan.is_ref:
            reference_fields_dyn += length
            if length:
                addresses = struct.unpack(
                    f"<{length}Q", read(element_base, length * 8)
                )
                return [1, addresses, 0]
            return None
        value_fields_dyn += length
        if length == 0:
            return None
        if plan.copy_elements:
            nbytes = length * plan.element_width
            data_dyn += nbytes
            return [2, element_base, nbytes, 0]
        values = struct.unpack(
            f"<{length}{plan.varint_code}",
            read(element_base, length * plan.element_width),
        )
        return [3, values, 0]  # zig-zag varint per element, resumable

    frame = emit(root)
    stack: List[list] = [frame] if frame is not None else []
    while stack:
        if out.ready_count:
            yield
        frame = stack[-1]
        descend = None
        kind = frame[0]
        if kind == 0:
            steps = frame[1]
            index = frame[2]
            raw = frame[3]
            step_count = len(steps)
            while index < step_count:
                if out.ready_count:
                    frame[2] = index
                    yield
                step = steps[index]
                index += 1
                if step.__class__ is int:
                    address = _U64.unpack_from(raw, step)[0]
                    if address == 0:
                        out.append(K.MARK_NULL)
                        mark_dyn += 1
                    else:
                        object_id = object_ids.get(address)
                        if object_id is not None:
                            out.append(K.MARK_BACKREF)
                            mark_dyn += 1
                            ref_count += append_varint(out, object_id)
                        else:
                            descend = emit(object_at(address))
                            if descend is not None:
                                break
                else:
                    data_dyn += step(out, raw)
            frame[2] = index
        elif kind == 1:
            addresses = frame[1]
            index = frame[2]
            count = len(addresses)
            while index < count:
                if out.ready_count:
                    frame[2] = index
                    yield
                address = addresses[index]
                index += 1
                if address == 0:
                    out.append(K.MARK_NULL)
                    mark_dyn += 1
                else:
                    object_id = object_ids.get(address)
                    if object_id is not None:
                        out.append(K.MARK_BACKREF)
                        mark_dyn += 1
                        ref_count += append_varint(out, object_id)
                    else:
                        descend = emit(object_at(address))
                        if descend is not None:
                            break
            frame[2] = index
        elif kind == 2:  # verbatim primitive array, chunk-sized slices
            element_base = frame[1]
            nbytes = frame[2]
            offset = frame[3]
            while offset < nbytes:
                if out.ready_count:
                    frame[3] = offset
                    yield
                step_n = min(chunk_bytes, nbytes - offset)
                out += read(element_base + offset, step_n)
                offset += step_n
            frame[3] = offset
        else:  # kind 3: INT/LONG array, zig-zag varint per element
            values = frame[1]
            index = frame[2]
            count = len(values)
            while index < count:
                if out.ready_count:
                    frame[2] = index
                    yield
                data_dyn += append_signed(out, values[index])
                index += 1
            frame[2] = index
        if descend is not None:
            stack.append(descend)
        else:
            stack.pop()

    total = len(out)

    objects = 0
    instr = 0
    aux = 0
    dep = 0
    mark_count = mark_dyn
    class_id_count = 0
    value_fields = value_fields_dyn
    reference_fields = reference_fields_dyn
    graph_bytes = graph_bytes_dyn
    data_count = data_dyn
    for cell in cells.values():
        count = cell[1]
        plan = cell[3]
        objects += count
        aux += count * plan.ser_aux
        dep += count * plan.ser_dep
        mark_count += count
        class_id_count += count * (len(cell[0]) - 1)
        if cell[2] == 2:
            instr += count * plan.ser_instr
        else:
            instr += count * (plan.ser_instr + plan.ser_reflect_instr)
            value_fields += count * plan.n_prim
            reference_fields += count * plan.n_ref
            graph_bytes += count * plan.size_bytes
    instr += instr_dyn + total * K._INSTR_PER_STREAM_BYTE

    profile = WorkProfile()
    profile.instructions = instr
    profile.objects = objects
    profile.value_fields = value_fields
    profile.reference_fields = reference_fields
    profile.dependent_loads = dep
    profile.aux_random_accesses = aux
    profile.bytes_read = graph_bytes
    profile.bytes_written = total
    sections = {
        K._SECTION_MARKS: mark_count,
        K._SECTION_CLASS_IDS: class_id_count,
    }
    if data_count:
        sections[K._SECTION_DATA] = data_count
    if ref_count:
        sections[K._SECTION_REFS] = ref_count
    _check_sections(serializer.name, sections, total)
    return ChunkedEncodeSummary(
        serializer.name, total, 0, sections, profile, objects, graph_bytes
    )


# -- cereal --------------------------------------------------------------------------


def _cereal_chunk_walk(serializer, root: HeapObject, out: ChunkingBuffer):
    """Chunked Cereal serialize over the plan-tier gathers.

    Cereal's columnar layout declares the value-array length in a frame
    word *before* the values, so the walk runs two passes: a cheap
    shape-memoized pre-count over the graph to size the value frame, then
    the streaming pass that emits header + value words object by object.
    References and bitmaps — the trailing minority sections — buffer as
    int lists during the streaming pass and are emitted chunked at the
    end, exactly replicating ``_assemble_stream``'s layout.
    """
    from repro.formats import cereal_format as C
    from repro.formats.packing import pack_bitmap_words, pack_items

    graph = SlotRunGraph.from_root(root, order="bfs")
    profile = WorkProfile()
    heap = root.heap
    read_words = heap.memory.read_words
    header_slots = heap.header_slots
    registration = serializer.registration
    relative_address = graph.relative_address
    strip_mark = serializer.strip_mark_word
    extension = [0] * (header_slots - 2)

    # Pass 1: pre-count value words per shape so the value frame can be
    # written before any value bytes.
    plans: dict = {}
    class_ids: dict = {}
    head_words = (0 if strip_mark else 1) + 1 + (header_slots - 2)
    value_word_total = 0
    for obj in graph.objects:
        klass = obj.klass
        shape = (klass, obj.length)
        plan = plans.get(shape)
        if plan is None:
            if not registration.is_registered(klass):
                raise RegistrationError(
                    f"class {klass.name!r} not registered with Cereal; "
                    f"call register_class() first"
                )
            plan = P.plan_for("cereal", klass, header_slots, obj.length)
            plans[shape] = plan
            class_ids[shape] = registration.id_of(klass)
        value_word_total += head_words + plan.n_value
    value_bytes_len = value_word_total * 8

    flags = (C._FLAG_PACKED if serializer.use_packing else 0) | (
        C._FLAG_MARK_STRIPPED if strip_mark else 0
    )
    header = struct.pack(
        "<IIB", graph.total_bytes, graph.object_count, flags
    )
    value_frame = struct.pack("<I", value_bytes_len)
    out += header
    out += value_frame

    # Pass 2: stream value words object by object; buffer refs/bitmaps.
    reference_values: List[int] = []
    bitmap_words: List[tuple] = []
    append_ref = reference_values.append
    append_bitmap = bitmap_words.append
    for obj in graph.objects:
        if out.ready_count:
            yield
        shape = (obj.klass, obj.length)
        plan = plans[shape]
        profile.objects += 1
        profile.add_instructions(plan.instr)
        append_bitmap((plan.bitmap_word, plan.bitmap_width))
        words = read_words(obj.address, plan.total_slots)
        vals: List[int] = []
        if not strip_mark:
            vals.append(words[C._MARK_SLOT])
        vals.append(class_ids[shape])
        if extension:
            vals.extend(extension)
        for index in plan.value_word_indices:
            vals.append(words[index])
        out += struct.pack(f"<{len(vals)}Q", *vals)
        for index in plan.ref_word_indices:
            raw = words[index]
            if raw == NULL_ADDRESS:
                append_ref(0)
            else:
                append_ref(relative_address[raw] + 1)
        profile.value_fields += plan.n_value
        profile.reference_fields += plan.n_ref

    # Trailer: reference + bitmap sections, byte-identical to
    # ``_assemble_stream`` and emitted in chunk-sized slices.
    if serializer.use_packing:
        packed_refs = pack_items(reference_values)
        packed_bitmaps = pack_bitmap_words(bitmap_words)
        ref_frame = struct.pack(
            "<III",
            len(packed_refs.data),
            len(packed_refs.end_map),
            packed_refs.item_count,
        )
        bitmap_frame = struct.pack(
            "<II", len(packed_bitmaps.data), len(packed_bitmaps.end_map)
        )
        ref_payload = [packed_refs.data, packed_refs.end_map]
        bitmap_payload = [packed_bitmaps.data, packed_bitmaps.end_map]
        sections_refs = {
            C.SECTION_REFS: len(packed_refs.data),
            C.SECTION_REF_END_MAP: len(packed_refs.end_map),
            C.SECTION_BITMAPS: len(packed_bitmaps.data),
            C.SECTION_BITMAP_END_MAP: len(packed_bitmaps.end_map),
        }
    else:
        ref_bytes = struct.pack(
            f"<{len(reference_values)}Q", *reference_values
        )
        bitmap_chunks = []
        for word, width in bitmap_words:
            nbytes = (width + 7) // 8
            bitmap_chunks.append(struct.pack("<Q", width))
            bitmap_chunks.append(
                (word << (nbytes * 8 - width)).to_bytes(nbytes, "big")
            )
        bitmap_bytes = b"".join(bitmap_chunks)
        ref_frame = struct.pack("<I", len(reference_values))
        bitmap_frame = struct.pack("<I", len(bitmap_bytes))
        ref_payload = [ref_bytes]
        bitmap_payload = [bitmap_bytes]
        sections_refs = {
            C.SECTION_REFS: len(ref_bytes),
            C.SECTION_BITMAPS: len(bitmap_bytes),
        }

    out += ref_frame
    for blob in ref_payload:
        yield from _stream_slices(out, blob)
    out += bitmap_frame
    for blob in bitmap_payload:
        yield from _stream_slices(out, blob)

    total = len(out)
    sections = {
        C.SECTION_META: len(header)
        + len(value_frame)
        + len(ref_frame)
        + len(bitmap_frame),
        C.SECTION_VALUES: value_bytes_len,
    }
    sections.update(sections_refs)
    profile.bytes_read = graph.total_bytes
    profile.bytes_written = total
    profile.add_instructions(total // 4)
    _check_sections(serializer.name, sections, total)
    return ChunkedEncodeSummary(
        serializer.name,
        total,
        0,
        sections,
        profile,
        graph.object_count,
        graph.total_bytes,
    )


# -- skyway --------------------------------------------------------------------------


def _skyway_chunk_walk(serializer, root: HeapObject, out: ChunkingBuffer):
    """Chunked Skyway serialize: the interpreter loop (Skyway has no
    plan/codegen tier) yielding between objects."""
    from repro.formats import skyway as S

    graph = ObjectGraph.from_root(root)
    profile = WorkProfile()
    heap = root.heap
    memory = heap.memory

    out += _U32.pack(graph.total_bytes)
    out += _U32.pack(graph.object_count)
    meta_count = 8
    header_count = 0
    value_count = 0
    ref_count = 0

    for obj in graph:
        if out.ready_count:
            yield
        profile.objects += 1
        profile.add_instructions(S._INSTR_PER_OBJECT)
        profile.aux_random_accesses += S._AUX_ACCESSES_PER_OBJECT_SER
        profile.dependent_loads += 2
        out += _U64.pack(memory.read_u64(obj.address))
        type_id = serializer.registration.register(obj.klass)
        out += _U64.pack(type_id)
        header_count += 16
        if heap.cereal_extension:
            out += _U64.pack(0)
            header_count += 8
        reference_slots = set(obj.reference_slots())
        for slot in range(obj.field_slots):
            raw = memory.read_u64(obj.slot_address(slot))
            profile.add_instructions(S._INSTR_PER_SLOT)
            if slot in reference_slots:
                profile.reference_fields += 1
                profile.add_instructions(S._INSTR_PER_REFERENCE)
                if raw == NULL_ADDRESS:
                    out += _U64.pack(S._NULL_RELATIVE)
                else:
                    out += _U64.pack(graph.relative_address[raw])
                ref_count += 8
            else:
                profile.value_fields += 1
                out += _U64.pack(raw)
                value_count += 8

    total = len(out)
    profile.bytes_read = graph.total_bytes
    profile.bytes_written = total
    profile.add_instructions(graph.total_bytes // 8)
    sections = {
        S._SECTION_META: meta_count,
        S._SECTION_HEADERS: header_count,
        S._SECTION_VALUES: value_count,
        S._SECTION_REFS: ref_count,
    }
    _check_sections(serializer.name, sections, total)
    return ChunkedEncodeSummary(
        serializer.name,
        total,
        0,
        sections,
        profile,
        graph.object_count,
        graph.total_bytes,
    )


# -- front doors ---------------------------------------------------------------------

_WALKS = {
    "java-builtin": _java_chunk_walk,
    "kryo": _kryo_chunk_walk,
    "cereal": _cereal_chunk_walk,
    "skyway": _skyway_chunk_walk,
}


def encode_cursor(
    serializer,
    root: HeapObject,
    chunk_bytes: int,
    pool=None,
    block: bool = False,
) -> EncodeCursor:
    """A resumable chunked encode of ``root`` under ``serializer``.

    ``pool`` defaults to the process-wide
    :data:`~repro.common.bufpool.GLOBAL_CHUNK_POOL`; ``block=True``
    makes arena exhaustion wait (threaded producer/consumer pipelines)
    instead of drawing counted overflow arenas.
    """
    walk_fn = _WALKS.get(serializer.name)
    if walk_fn is None:
        raise FormatError(
            f"no chunked walk for serializer {serializer.name!r} "
            f"(supported: {sorted(_WALKS)})"
        )
    buffer = ChunkingBuffer(chunk_bytes, pool=pool, block=block)
    return EncodeCursor(walk_fn(serializer, root, buffer), buffer)


def collect_chunks(
    serializer,
    root: HeapObject,
    chunk_bytes: int,
    pool=None,
    framed: bool = False,
):
    """Drain a full chunked encode; returns ``(chunks, summary)``.

    Each chunk is copied out of its arena (which returns to the pool
    immediately), so this is the reference single-threaded pull loop:
    the pool's high-water mark stays at one chunk regardless of payload
    size. With ``framed=True`` every chunk is wrapped in the CRC chunk
    frame, the final one carrying the LAST flag.
    """
    cursor = encode_cursor(serializer, root, chunk_bytes, pool=pool)
    chunks: List[bytes] = []
    while True:
        arena = cursor.next_chunk()
        if arena is None:
            break
        chunks.append(bytes(arena))
        cursor.recycle(arena)
    if framed:
        last = len(chunks) - 1
        chunks = [
            frame_chunk(seq, chunk, last=(seq == last))
            for seq, chunk in enumerate(chunks)
        ]
    return chunks, cursor.summary


class ChunkAssembler:
    """Receiver-side reassembly of CRC-framed chunks with incremental
    :class:`DecodeLimits` enforcement.

    ``push`` verifies each frame (magic, header CRC, payload CRC, strict
    sequence order) and charges the running payload size against
    ``max_stream_bytes`` *as chunks arrive* — an over-budget or corrupt
    stream is rejected at the offending chunk, before later chunks are
    read. ``payload()`` returns the assembled bytes only once the
    LAST-flagged chunk has landed; a clipped tail raises
    :class:`TruncatedStreamError` whose offset is the point where the
    stream went dark.
    """

    def __init__(self, limits: Optional[DecodeLimits] = None):
        self._limits = resolve_limits(limits)
        self._payload = bytearray()
        self._next_seq = 0
        self.finished = False
        self.chunks_received = 0

    @property
    def assembled_bytes(self) -> int:
        return len(self._payload)

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def push(self, framed_chunk) -> None:
        if self.finished:
            raise CorruptionError(
                f"chunk {self._next_seq} arrived after the LAST-flagged chunk"
            )
        seq, payload, last = unframe_chunk(framed_chunk)
        if seq != self._next_seq:
            raise CorruptionError(
                f"chunk sequence gap: expected {self._next_seq}, got {seq}"
            )
        self._limits.check_stream_bytes(len(self._payload) + len(payload))
        self._payload += payload
        self._next_seq += 1
        self.chunks_received += 1
        if last:
            self.finished = True

    def payload(self) -> bytearray:
        """The reassembled stream payload (zero-copy: the internal
        buffer, safe to hand to decoders directly)."""
        if not self.finished:
            raise TruncatedStreamError(
                offset=len(self._payload), needed=1, available=0
            )
        return self._payload
