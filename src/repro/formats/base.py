"""Serializer interface, stream container, and work profiles.

A :class:`SerializedStream` carries the actual serialized bytes plus a
per-section byte breakdown (type metadata vs. values vs. references vs.
bitmaps) used by the size experiments (Table IV, Figures 12 and 16).

A :class:`WorkProfile` records the *work done* by a (de)serialization —
dynamic instruction estimate, object/field/reference counts, bytes moved —
which the CPU cost model converts into cycles, IPC, and bandwidth. The
functional serializers below are the single source of truth for both the
bytes and the work, so the size and performance experiments can never drift
apart.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.formats.limits import DecodeLimits
from repro.jvm.heap import Heap, HeapObject


@dataclass
class SerializedStream:
    """Serialized bytes plus bookkeeping about how they break down."""

    format_name: str
    data: bytes
    sections: Dict[str, int] = field(default_factory=dict)
    object_count: int = 0
    graph_bytes: int = 0  # total size of the source object graph in memory

    @property
    def size_bytes(self) -> int:
        return len(self.data)

    def section_fraction(self, name: str) -> float:
        """Fraction of the stream occupied by section ``name``."""
        if not self.data:
            return 0.0
        return self.sections.get(name, 0) / len(self.data)

    def check_sections(self) -> None:
        """Invariant: section sizes must sum to the stream size."""
        total = sum(self.sections.values())
        if total != len(self.data):
            raise AssertionError(
                f"{self.format_name}: sections sum to {total}, "
                f"stream is {len(self.data)} bytes"
            )

    # -- checksummed framing (transfer-path integrity) --------------------------

    @property
    def is_framed(self) -> bool:
        """True when the data carries the checksummed frame header."""
        from repro.formats.streams import looks_framed

        return looks_framed(self.data)

    def framed(self) -> "SerializedStream":
        """Copy of this stream wrapped in the CRC32 frame (idempotent)."""
        from repro.formats.streams import (
            FRAME_HEADER_BYTES,
            FRAME_SECTION,
            frame_payload,
        )

        if self.is_framed:
            return self
        sections = dict(self.sections)
        sections[FRAME_SECTION] = FRAME_HEADER_BYTES
        return SerializedStream(
            format_name=self.format_name,
            data=frame_payload(self.data),
            sections=sections,
            object_count=self.object_count,
            graph_bytes=self.graph_bytes,
        )

    def unframed(self) -> "SerializedStream":
        """Verify the frame checksums and return the bare payload stream.

        Raises :class:`repro.common.errors.CorruptionError` when the frame
        is damaged, truncated, or missing — every ``deserialize`` of a
        framed stream goes through this check.
        """
        from repro.formats.streams import FRAME_SECTION, unframe_payload

        payload = unframe_payload(self.data)
        sections = {
            name: size
            for name, size in self.sections.items()
            if name != FRAME_SECTION
        }
        return SerializedStream(
            format_name=self.format_name,
            data=payload,
            sections=sections,
            object_count=self.object_count,
            graph_bytes=self.graph_bytes,
        )


@dataclass
class WorkProfile:
    """Operation counts for one serialize or deserialize call."""

    instructions: int = 0
    objects: int = 0
    value_fields: int = 0
    reference_fields: int = 0
    bytes_read: int = 0  # heap bytes read (ser) or stream bytes read (deser)
    bytes_written: int = 0  # stream bytes written (ser) or heap written (deser)
    dependent_loads: int = 0  # pointer-chasing loads that serialize MLP
    allocations: int = 0
    # Memory-level parallelism the algorithm exposes to the core: how many
    # independent misses the bounded instruction window can keep in flight.
    # Pointer-chasing serializers sit near 1; bulk-copy ones stream higher.
    mlp: float = 1.5
    # Accesses into runtime-internal data structures that the heap trace
    # cannot see: the handle/identity hash table, ObjectStreamClass and
    # reflection caches, Kryo's reference resolver. These are hash-
    # distributed (random) accesses over a region that grows with the
    # object count; the CPU harness synthesizes them into the trace.
    aux_random_accesses: int = 0
    aux_bytes_per_entry: int = 48  # hash entry + boxed key + cache node

    def add_instructions(self, count: int) -> None:
        self.instructions += count

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written


@dataclass
class SerializationResult:
    stream: SerializedStream
    profile: WorkProfile


@dataclass
class DeserializationResult:
    root: HeapObject
    profile: WorkProfile


class Serializer(abc.ABC):
    """Common interface for all S/D implementations in the reproduction."""

    #: Human-readable library name used in reports and figures.
    name: str = "abstract"

    @abc.abstractmethod
    def serialize(self, root: HeapObject) -> SerializationResult:
        """Serialize the graph reachable from ``root`` into a byte stream."""

    @abc.abstractmethod
    def deserialize(
        self,
        stream: SerializedStream,
        heap: Heap,
        limits: Optional[DecodeLimits] = None,
    ) -> DeserializationResult:
        """Reconstruct the object graph from ``stream`` on ``heap``.

        ``limits`` bounds the resources the decode may consume; ``None``
        applies :data:`repro.formats.limits.DEFAULT_LIMITS`.
        """

    def serialize_chunks(
        self,
        root: HeapObject,
        chunk_bytes: int,
        pool=None,
        block: bool = False,
    ):
        """A resumable chunked encode of ``root``: returns an
        :class:`~repro.formats.plans.EncodeCursor` that yields the stream
        in exact ``chunk_bytes``-sized arenas drawn from ``pool`` (default
        the process-wide chunk pool). Chunk concatenation is byte-identical
        to :meth:`serialize`; see :mod:`repro.formats.chunked`.
        """
        from repro.formats.chunked import encode_cursor

        return encode_cursor(
            self, root, chunk_bytes, pool=pool, block=block
        )

    def round_trip(self, root: HeapObject, heap: Heap) -> HeapObject:
        """Serialize then deserialize; convenience for tests and examples."""
        result = self.serialize(root)
        return self.deserialize(result.stream, heap).root
