"""Generated per-shape serialization kernels: the codegen tier.

The compiled plans in :mod:`repro.formats.plans` removed per-object shape
analysis, but every plan op is still dispatched through a Python ``for``
loop with per-op tuple unpacking and branching. This module removes that
last interpreter level: for each plan it emits Python *source* for a
specialized ``encode_<fingerprint>`` / ``decode_<fingerprint>`` function
in which the op-list is unrolled into straight-line code —

* merged ``OP_COPY`` runs become single slice copies from the object's
  raw image (a zero-copy :class:`memoryview` over heap pages),
* ``DOP_WORDS`` runs become one precompiled
  :meth:`struct.Struct.unpack_from` over the whole fixed-width segment,
* varint/zig-zag ops are inlined (with a one-byte fast path on decode),
* and the per-object work-profile deltas are *not* in the kernel at all:
  the drivers count objects per shape and multiply the plan's pre-summed
  constants once per serialize/deserialize call.

Encode kernels are split at ``OP_REF`` boundaries into *segments*; a
kernel is either a single leaf function (shapes with no reference
fields) or a ``steps`` tuple mixing segment callables with plain ``int``
entries marking the reference slots (raw-image byte offsets on encode,
field indices on decode). The drivers dispatch on ``step.__class__ is
int`` — no opcode table, no tuple unpacking.

Generated functions are compiled with :func:`compile` +
:func:`exec` into a minimal closed namespace: ``__builtins__`` is
replaced by an empty dict and only the handful of names the templates
use (``len``, precompiled ``struct.Struct`` objects, the shared varint
reader, the underflow-error factory) are provided. The source never
interpolates runtime *values* — only integer offsets, widths and slot
indices taken from the compiled plan — so a kernel is exactly as
trusted as the plan it came from.

Kernels live in a process-wide bounded cache keyed on the existing
klass fingerprint (:func:`repro.formats.plans.klass_fingerprint`), with
hit/miss/eviction/compile-time counters exported through ``repro.obs``
as ``codegen_cache.*`` — mirroring the plan cache so service SLO
reports and benchmarks can gate on warm-rate.

Byte-identity: the codegen path must produce exactly the bytes, section
splits and :class:`~repro.formats.base.WorkProfile` numbers of the plan
path and the interpreter oracle. ``tests/test_codegen.py`` and the
three-way fuzz suite in ``tests/test_plans.py`` enforce this. The one
sanctioned divergence is *error detail* on truncated streams: a codegen
decode segment bounds-checks its whole fixed-width span at once, so the
``TruncatedStreamError`` it raises reports the segment's offset/needed
rather than the individual field's. The error type is unchanged.
"""

from __future__ import annotations

import struct
import time
from typing import Dict, List, Tuple

from repro.common.errors import TruncatedStreamError
from repro.formats import plans as P
from repro.formats.varint import read_varint
from repro.obs.metrics import get_registry

_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")
_U64 = struct.Struct("<Q")

# struct codes for the fixed-width decode ops that can join a combined
# unpack_from batch: (code, wire bytes)
_DECODE_CODES = {
    P.DOP_BOOL: ("B", 1),
    P.DOP_BYTE: ("b", 1),
    P.DOP_CHAR: ("H", 2),
    P.DOP_SHORT: ("h", 2),
    P.DOP_INT: ("i", 4),
    P.DOP_FLOAT: ("f", 4),
}

# Identifier-safe labels for generated function names / compile filenames.
_FMT_LABELS = {"java-builtin": "java", "kryo": "kryo"}

# Cereal gather kernels longer than this many tuple chunks fall back to
# the plan-path per-slot loops (the generated expression would be long
# and the slice fusion wins shrink as runs fragment).
_CEREAL_MAX_CHUNKS = 64


def _underflow(pos: int, needed: int, total: int) -> TruncatedStreamError:
    """Error factory shared with the generated decode segments."""
    return TruncatedStreamError(offset=pos, needed=needed, available=total - pos)


# -- kernel containers ---------------------------------------------------------------


class EncodeKernel:
    """A compiled encode function set for one instance shape.

    ``leaf`` is the single straight-line function for shapes with no
    reference fields (``steps`` is then ``None``); otherwise ``steps``
    is the mixed tuple of segment callables and reference byte offsets.
    ``source`` retains the generated Python for tests and debugging.
    ``max_write_bytes`` is the worst-case bytes one segment call can
    append (varints counted at their 10-byte ceiling) — the chunked
    executor uses it to bound how far a single uninterruptible kernel
    step can overshoot a chunk arena before the next suspension point.
    """

    __slots__ = ("leaf", "steps", "source", "max_write_bytes")

    def __init__(self, leaf, steps, source: str, max_write_bytes: int = 0):
        self.leaf = leaf
        self.steps = steps
        self.source = source
        self.max_write_bytes = max_write_bytes


class DecodeKernel:
    """Compiled decode function set; mirrors :class:`EncodeKernel` with
    reference *field indices* in ``steps`` instead of byte offsets."""

    __slots__ = ("leaf", "steps", "source")

    def __init__(self, leaf, steps, source: str):
        self.leaf = leaf
        self.steps = steps
        self.source = source


class CerealKernel:
    """Compiled Cereal slot-gather: ``gather(words, class_id)`` returns
    ``(value_word_tuple, raw_reference_tuple)``. ``gather`` is ``None``
    for shapes past :data:`_CEREAL_MAX_CHUNKS` (plan-path fallback)."""

    __slots__ = ("gather", "source")

    def __init__(self, gather, source: str):
        self.gather = gather
        self.source = source


# -- the process-wide codegen cache --------------------------------------------------

_MAX_ENTRIES = 1 << 12
_KERNELS: Dict[Tuple, object] = {}

_HITS = get_registry().counter("codegen_cache.hits")
_MISSES = get_registry().counter("codegen_cache.misses")
_EVICTIONS = get_registry().counter("codegen_cache.evictions")
_ENTRIES = get_registry().gauge("codegen_cache.entries")
_COMPILE_NS = get_registry().counter("codegen_cache.compile_ns")


def codegen_cache_stats() -> Dict[str, object]:
    """Hit/miss/eviction/compile-time counters, like ``plan_cache_stats``."""
    hits, misses = _HITS.value, _MISSES.value
    probes = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "evictions": _EVICTIONS.value,
        "entries": len(_KERNELS),
        "hit_rate": round(hits / probes, 4) if probes else 0.0,
        "compile_ns": _COMPILE_NS.value,
    }


def reset_codegen_cache() -> None:
    """Drop generated kernels and zero the counters (tests, benchmarks)."""
    _KERNELS.clear()
    _HITS.reset()
    _MISSES.reset()
    _EVICTIONS.reset()
    _ENTRIES.reset()
    _COMPILE_NS.reset()


def generated_sources() -> Dict[Tuple, str]:
    """Snapshot of every cached kernel's generated source, keyed like the
    cache itself — the compile-round-trip test iterates this."""
    return {key: kernel.source for key, kernel in _KERNELS.items()}


def _store(key: Tuple, kernel):
    if len(_KERNELS) >= _MAX_ENTRIES:
        _KERNELS.clear()
        _EVICTIONS.inc()
    _KERNELS[key] = kernel
    _ENTRIES.set(len(_KERNELS))
    return kernel


def _namespace(structs: Dict[str, struct.Struct]) -> Dict[str, object]:
    """The closed namespace generated code executes in: no builtins
    beyond ``len``, plus exactly the helpers the templates reference."""
    ns: Dict[str, object] = {
        "__builtins__": {},
        "len": len,
        "_F32": _F32,
        "_F64": _F64,
        "_I64": _I64,
        "_U64": _U64,
        "_rv": read_varint,
        "_underflow": _underflow,
    }
    ns.update(structs)
    return ns


def _compile_into(source: str, filename: str, structs: Dict[str, struct.Struct]):
    ns = _namespace(structs)
    exec(compile(source, filename, "exec"), ns)
    return ns


# -- encode generation ---------------------------------------------------------------


def _split_encode_segments(enc_ops) -> Tuple[List[list], List[Tuple[str, int]]]:
    """Split a plan's encode ops at OP_REF boundaries.

    Returns ``(segments, spec)`` where ``spec`` interleaves
    ``("seg", segment_index)`` and ``("ref", byte_offset)`` entries in
    stream order.
    """
    segments: List[list] = []
    spec: List[Tuple[str, int]] = []
    current: list = []
    for op, start, end in enc_ops:
        if op == P.OP_REF:
            if current:
                spec.append(("seg", len(segments)))
                segments.append(current)
                current = []
            spec.append(("ref", start))
        else:
            current.append((op, start, end))
    if current:
        spec.append(("seg", len(segments)))
        segments.append(current)
    return segments, spec


def _encode_segment_body(ops, track_data: bool) -> List[str]:
    body: List[str] = []
    if track_data:
        body.append("    base = len(out)")
    for op, start, end in ops:
        if op == P.OP_COPY:
            body.append(f"    out += raw[{start}:{end}]")
        elif op == P.OP_FLOAT:
            body.append(f"    out += _F32.pack(_F64.unpack_from(raw, {start})[0])")
        else:  # OP_VARINT: inline zig-zag LEB128 append
            body.append(f"    v = _I64.unpack_from(raw, {start})[0]")
            body.append(
                "    z = ((v << 1) ^ (v >> 63)) & 0xFFFFFFFFFFFFFFFF"
                " if v < 0 else v << 1"
            )
            body.append("    while z > 127:")
            body.append("        out.append(z & 127 | 128)")
            body.append("        z >>= 7")
            body.append("    out.append(z)")
    if track_data:
        body.append("    return len(out) - base")
    elif not body:
        body.append("    pass")
    return body


def _segment_write_ceiling(ops) -> int:
    """Worst-case bytes one encode segment appends: copies at their exact
    width, f64→f32 at 4, zig-zag varints at the 10-byte LEB128 ceiling."""
    total = 0
    for op, start, end in ops:
        if op == P.OP_COPY:
            total += end - start
        elif op == P.OP_FLOAT:
            total += 4
        else:  # OP_VARINT
            total += 10
    return total


def _build_encode(plan, format_name: str, fingerprint: str) -> EncodeKernel:
    """Generate, compile and wrap the encode kernel for an instance plan.

    ``track_data`` (Kryo) makes every function return the number of
    field-data bytes it appended — varint lengths are dynamic there, so
    the driver accumulates segment returns instead of a plan constant.
    """
    label = _FMT_LABELS[format_name]
    track_data = format_name == "kryo"
    segments, spec = _split_encode_segments(plan.enc_ops)
    leaf = plan.n_ref == 0

    lines: List[str] = []
    names: List[str] = []
    if leaf:
        name = f"encode_{label}_{fingerprint}"
        names.append(name)
        lines.append(f"def {name}(out, raw):")
        lines.extend(_encode_segment_body(segments[0] if segments else [], track_data))
        lines.append("")
    else:
        for index, ops in enumerate(segments):
            name = f"encode_{label}_{fingerprint}_seg{index}"
            names.append(name)
            lines.append(f"def {name}(out, raw):")
            lines.extend(_encode_segment_body(ops, track_data))
            lines.append("")

    source = "\n".join(lines)
    ns = _compile_into(source, f"<codegen:{label}:enc:{fingerprint}>", {})
    ceiling = max(
        (_segment_write_ceiling(ops) for ops in segments), default=0
    )
    if leaf:
        return EncodeKernel(ns[names[0]], None, source, ceiling)
    steps = tuple(
        ns[names[value]] if kind == "seg" else value for kind, value in spec
    )
    return EncodeKernel(None, steps, source, ceiling)


# -- decode generation ---------------------------------------------------------------


def _split_decode_segments(dec_ops) -> Tuple[List[list], List[Tuple[str, int]]]:
    """Split a plan's decode ops at DOP_REF boundaries; ``("ref", i)``
    entries carry the reference's *field index*."""
    segments: List[list] = []
    spec: List[Tuple[str, int]] = []
    current: list = []
    for op, a, b in dec_ops:
        if op == P.DOP_REF:
            if current:
                spec.append(("seg", len(segments)))
                segments.append(current)
                current = []
            spec.append(("ref", a))
        else:
            current.append((op, a, b))
    if current:
        spec.append(("seg", len(segments)))
        segments.append(current)
    return segments, spec


def _flush_decode_batch(batch, lines, structs) -> None:
    """Emit one combined bounds check + Struct unpack for a run of
    fixed-width ops, then the per-field slot-word conversions."""
    if not batch:
        return
    codes = []
    for op, index, count in batch:
        if op == P.DOP_WORDS:
            codes.append("Q" * count)
        else:
            codes.append(_DECODE_CODES[op][0])
    st = struct.Struct("<" + "".join(codes))
    sname = f"_S{len(structs)}"
    structs[sname] = st
    nbytes = st.size
    lines.append(f"    if pos + {nbytes} > n:")
    lines.append(f"        raise _underflow(pos, {nbytes}, n)")
    if len(batch) == 1 and batch[0][0] == P.DOP_WORDS:
        # Pure verbatim run: bulk-unpack straight into the word list.
        _, index, count = batch[0]
        lines.append(
            f"    words[{index}:{index + count}] = {sname}.unpack_from(data, pos)"
        )
        lines.append(f"    pos += {nbytes}")
        return
    lines.append(f"    t = {sname}.unpack_from(data, pos)")
    lines.append(f"    pos += {nbytes}")
    position = 0
    for op, index, count in batch:
        if op == P.DOP_WORDS:
            lines.append(
                f"    words[{index}:{index + count}] = t[{position}:{position + count}]"
            )
            position += count
            continue
        value = f"t[{position}]"
        position += 1
        if op == P.DOP_BOOL:
            lines.append(f"    words[{index}] = 1 if {value} else 0")
        elif op == P.DOP_CHAR:
            lines.append(f"    words[{index}] = {value}")
        elif op == P.DOP_FLOAT:
            lines.append(f"    words[{index}] = _U64.unpack(_F64.pack({value}))[0]")
        else:  # BYTE / SHORT / INT: sign-extend into the u64 slot word
            lines.append(f"    words[{index}] = {value} & 0xFFFFFFFFFFFFFFFF")


def _decode_segment_lines(ops, lines, structs) -> None:
    batch: list = []
    for op, a, b in ops:
        if op == P.DOP_VARINT:
            _flush_decode_batch(batch, lines, structs)
            batch = []
            # Inline zig-zag varint with a one-byte fast path; the slow
            # path shares the 10-byte overflow guard via ``_rv``.
            lines.append("    if pos < n and data[pos] < 128:")
            lines.append("        z = data[pos]")
            lines.append("        pos += 1")
            lines.append("    else:")
            lines.append("        z, pos = _rv(data, pos)")
            lines.append(
                f"    words[{a}] = ((z >> 1) ^ -(z & 1)) & 0xFFFFFFFFFFFFFFFF"
            )
        else:
            batch.append((op, a, b))
    _flush_decode_batch(batch, lines, structs)


def _build_decode(plan, format_name: str, fingerprint: str) -> DecodeKernel:
    label = _FMT_LABELS[format_name]
    segments, spec = _split_decode_segments(plan.dec_ops)
    leaf = plan.n_ref == 0

    structs: Dict[str, struct.Struct] = {}
    lines: List[str] = []
    names: List[str] = []
    if leaf:
        name = f"decode_{label}_{fingerprint}"
        names.append(name)
        lines.append(f"def {name}(data, pos, words):")
        lines.append("    n = len(data)")
        _decode_segment_lines(segments[0] if segments else [], lines, structs)
        lines.append("    return pos")
        lines.append("")
    else:
        for index, ops in enumerate(segments):
            name = f"decode_{label}_{fingerprint}_seg{index}"
            names.append(name)
            lines.append(f"def {name}(data, pos, words):")
            lines.append("    n = len(data)")
            _decode_segment_lines(ops, lines, structs)
            lines.append("    return pos")
            lines.append("")

    source = "\n".join(lines)
    ns = _compile_into(source, f"<codegen:{label}:dec:{fingerprint}>", structs)
    if leaf:
        return DecodeKernel(ns[names[0]], None, source)
    steps = tuple(
        ns[names[value]] if kind == "seg" else value for kind, value in spec
    )
    return DecodeKernel(None, steps, source)


# -- cereal gather generation --------------------------------------------------------


def _index_runs(indices) -> List[Tuple[int, int]]:
    """Contiguous ``[start, end)`` runs over a sorted index tuple."""
    runs: List[Tuple[int, int]] = []
    for index in indices:
        if runs and runs[-1][1] == index:
            runs[-1] = (runs[-1][0], index + 1)
        else:
            runs.append((index, index + 1))
    return runs


def _tuple_chunks(indices) -> List[str]:
    chunks = []
    for start, end in _index_runs(indices):
        if end - start == 1:
            chunks.append(f"(words[{start}],)")
        else:
            chunks.append(f"words[{start}:{end}]")
    return chunks


def _build_cereal(
    plan, fingerprint: str, header_slots: int, length: int, strip_mark: bool
) -> CerealKernel:
    head = []
    if not strip_mark:
        head.append("words[0]")
    head.append("class_id")
    head.extend("0" for _ in range(header_slots - 2))
    trailing = "," if len(head) == 1 else ""
    chunks = ["(" + ", ".join(head) + trailing + ")"]
    chunks.extend(_tuple_chunks(plan.value_word_indices))
    ref_chunks = _tuple_chunks(plan.ref_word_indices)
    if len(chunks) + len(ref_chunks) > _CEREAL_MAX_CHUNKS:
        return CerealKernel(None, "")
    values_expr = " + ".join(chunks)
    refs_expr = " + ".join(ref_chunks) if ref_chunks else "()"
    name = f"encode_cereal_{fingerprint}_{length}_{int(strip_mark)}"
    source = f"def {name}(words, class_id):\n    return {values_expr}, {refs_expr}\n"
    ns = _compile_into(source, f"<codegen:cereal:enc:{fingerprint}:{length}>", {})
    return CerealKernel(ns[name], source)


# -- cache front doors ---------------------------------------------------------------


def encode_kernel_for(format_name: str, klass, header_slots: int, plan) -> EncodeKernel:
    """The memoized encode kernel for an instance shape under a format."""
    key = (format_name, "enc", P.klass_fingerprint(klass), header_slots)
    kernel = _KERNELS.get(key)
    if kernel is not None:
        _HITS.value += 1  # direct bump: probed once per shape per call
        return kernel
    _MISSES.inc()
    started = time.perf_counter_ns()
    kernel = _build_encode(plan, format_name, key[2])
    _COMPILE_NS.value += time.perf_counter_ns() - started
    return _store(key, kernel)


def decode_kernel_for(format_name: str, klass, header_slots: int, plan) -> DecodeKernel:
    """The memoized decode kernel for an instance shape under a format."""
    key = (format_name, "dec", P.klass_fingerprint(klass), header_slots)
    kernel = _KERNELS.get(key)
    if kernel is not None:
        _HITS.value += 1
        return kernel
    _MISSES.inc()
    started = time.perf_counter_ns()
    kernel = _build_decode(plan, format_name, key[2])
    _COMPILE_NS.value += time.perf_counter_ns() - started
    return _store(key, kernel)


def cereal_kernel_for(
    klass, header_slots: int, length: int, strip_mark: bool, plan
) -> CerealKernel:
    """The memoized Cereal gather kernel for one ``(shape, length)``."""
    key = (
        "cereal",
        "enc",
        P.klass_fingerprint(klass),
        header_slots,
        length,
        strip_mark,
    )
    kernel = _KERNELS.get(key)
    if kernel is not None:
        _HITS.value += 1
        return kernel
    _MISSES.inc()
    started = time.perf_counter_ns()
    kernel = _build_cereal(plan, key[2], header_slots, length, strip_mark)
    _COMPILE_NS.value += time.perf_counter_ns() - started
    return _store(key, kernel)
