"""The original per-bit packing kernels, kept as the correctness oracle.

These are the bit-list implementations of the Section IV-B object packing
scheme that shipped with the seed reproduction: every item is materialized
as a Python ``List[int]`` of bits and processed one bit per interpreter
iteration. They are deliberately *slow* — that is the point. The
word-level fast path in :mod:`repro.formats.packing` must stay bit-exact
against these kernels forever; ``tests/test_bitstream_equivalence.py``
enforces it property-based, and ``benchmarks/bench_wallclock.py`` measures
the fast path's speedup against them.

Do not optimize this module. Its value is that it is obviously correct —
a line-by-line transcription of the paper's Figure 5 description.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.common.bitutils import (
    bits_to_bytes,
    bytes_to_bits,
    int_to_bits,
    significant_bits,
)
from repro.common.errors import FormatError
from repro.formats.packing import PackedArray


def slow_pack_bit_items(items: Sequence[Sequence[int]]) -> PackedArray:
    """Pack pre-extracted significant-bit strings into buckets + end map."""
    packed_bits: List[int] = []
    end_positions: List[int] = []  # index of each item's final byte
    for bits in items:
        item_bits = list(bits) + [1]  # append the end bit
        # Pad this item to a whole number of 1 B buckets.
        padding = (-len(item_bits)) % 8
        item_bits.extend([0] * padding)
        packed_bits.extend(item_bits)
        end_positions.append(len(packed_bits) // 8 - 1)

    data = bits_to_bytes(packed_bits)
    end_map_bits = [0] * len(data)
    for position in end_positions:
        end_map_bits[position] = 1
    return PackedArray(
        data=data, end_map=bits_to_bytes(end_map_bits), item_count=len(items)
    )


def slow_unpack_bit_items(packed: PackedArray) -> List[List[int]]:
    """Inverse of :func:`slow_pack_bit_items`: recover each item's payload."""
    end_bits = bytes_to_bits(packed.end_map, bit_count=len(packed.data))
    items: List[List[int]] = []
    start_byte = 0
    for index, is_end in enumerate(end_bits):
        if not is_end:
            continue
        bucket_bits = bytes_to_bits(packed.data[start_byte : index + 1])
        # The end bit is the last set bit; payload is everything before it.
        last_one = -1
        for position, bit in enumerate(bucket_bits):
            if bit:
                last_one = position
        if last_one < 0:
            raise FormatError("packed item contains no end bit")
        items.append(bucket_bits[:last_one])
        start_byte = index + 1
    if len(items) != packed.item_count:
        raise FormatError(
            f"end map yields {len(items)} items, expected {packed.item_count}"
        )
    if start_byte != len(packed.data):
        raise FormatError(
            f"{len(packed.data) - start_byte} trailing packed bytes after last item"
        )
    return items


def slow_pack_items(values: Sequence[int]) -> PackedArray:
    """Per-bit reference packing (the seed's ``pack_items``)."""
    bit_items = [int_to_bits(value, significant_bits(value)) for value in values]
    return slow_pack_bit_items(bit_items)


def slow_unpack_items(packed: PackedArray) -> List[int]:
    """Per-bit inverse of :func:`slow_pack_items`."""
    out: List[int] = []
    for bits in slow_unpack_bit_items(packed):
        value = 0
        for bit in bits:
            value = (value << 1) | bit
        out.append(value)
    return out


def slow_pack_bitmaps(bitmaps: Sequence[Sequence[int]]) -> PackedArray:
    """Per-bit layout-bitmap packing (the seed's ``pack_bitmaps``)."""
    for bitmap in bitmaps:
        if len(bitmap) == 0:
            raise FormatError("layout bitmap must be non-empty")
        if any(bit not in (0, 1) for bit in bitmap):
            raise FormatError("layout bitmap must contain only 0/1")
    return slow_pack_bit_items([list(bitmap) for bitmap in bitmaps])


def slow_unpack_bitmaps(packed: PackedArray) -> List[List[int]]:
    """Per-bit inverse of :func:`slow_pack_bitmaps`."""
    return slow_unpack_bit_items(packed)


def oracle_serializer(format_name: str, **kwargs):
    """Build a serializer with the compiled-plan fast path disabled.

    The plan kernels in :mod:`repro.formats.plans` must produce streams
    byte-identical to these interpreter-path serializers for every input;
    ``tests/test_plans.py`` enforces it over the fuzz corpus, and
    ``benchmarks/bench_wallclock.py`` measures the plan speedup against
    them. Imports are deferred so this module stays free of serializer
    dependencies for the packing-oracle consumers.
    """
    from repro.formats.cereal_format import CerealSerializer
    from repro.formats.javaser import JavaSerializer
    from repro.formats.kryo import KryoSerializer

    if format_name == "java-builtin":
        return JavaSerializer(use_plans=False, **kwargs)
    if format_name == "kryo":
        return KryoSerializer(use_plans=False, **kwargs)
    if format_name == "cereal":
        return CerealSerializer(use_plans=False, **kwargs)
    raise FormatError(f"no oracle serializer for format {format_name!r}")
