"""Cereal's object packing scheme (paper Section IV-B, Figure 5).

The baseline Cereal format would need either an 8 B length per layout bitmap
or wasteful fixed-size buckets. The packing scheme instead stores, for each
item (a reference's relative address, or an object's layout bitmap):

1. the item's *significant bits* — leading zeros dropped for numeric items,
   the full bit string for bitmaps — followed by a single **end bit** (1);
2. the resulting bit string, zero-padded at the tail into 1-byte buckets;
3. one **end map** bit per packed byte, set on the final byte of each item,
   so boundaries cost 1/8 of the packed size instead of a length word.

Decoding uses the end map to find each item's byte extent, then locates the
item's *last set bit* — the end bit — and takes everything before it as the
payload. This is lossless because the end bit is always the last 1 in the
item's buckets (padding is all zeros).

The same scheme packs both the reference array and the layout bitmaps
(Section IV-B: "we apply this object packing scheme to both the layout
bitmap and references"). Hardware cost: the SU's reference array writer and
the DU's unpackers implement exactly these loops.

**Implementation note (word-level fast path).** Items are processed as
``(value, width)`` *words*, never as per-bit lists: one packed item is a
shift, an or, and an ``int.to_bytes``; one unpacked item is an
``int.from_bytes``, a trailing-zero count, and a shift. The original
per-bit kernels survive verbatim in :mod:`repro.formats.slow_reference`
as the equivalence oracle; both produce byte-identical streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.common.bitstream import bits_to_word, trailing_zeros, word_to_bits
from repro.common.errors import FormatError


@dataclass(frozen=True)
class PackedArray:
    """A packed item stream plus its end map."""

    data: bytes
    end_map: bytes
    item_count: int

    @property
    def total_bytes(self) -> int:
        return len(self.data) + len(self.end_map)


# -- word-level kernels -----------------------------------------------------------------


def pack_word_items(items: Sequence[Tuple[int, int]]) -> PackedArray:
    """Pack ``(payload, width)`` words into buckets + end map.

    Each item becomes ``width`` payload bits, the end bit, and tail zeros
    to the next byte boundary — emitted as a single ``int.to_bytes`` call.
    """
    data = bytearray()
    end_positions: List[int] = []
    for value, width in items:
        if width < 1:
            raise ValueError(f"item width must be at least 1, got {width}")
        if value < 0 or value.bit_length() > width:
            raise ValueError(f"item value {value} does not fit in {width} bits")
        nbits = width + 1  # payload + end bit
        nbytes = (nbits + 7) >> 3
        data += (((value << 1) | 1) << ((nbytes << 3) - nbits)).to_bytes(
            nbytes, "big"
        )
        end_positions.append(len(data) - 1)

    end_map = bytearray((len(data) + 7) >> 3)
    for position in end_positions:
        end_map[position >> 3] |= 0x80 >> (position & 7)
    return PackedArray(
        data=bytes(data), end_map=bytes(end_map), item_count=len(items)
    )


def _item_extents(packed: PackedArray) -> Iterator[Tuple[int, int]]:
    """Yield each item's ``(first_byte, last_byte)`` extent from the end map."""
    data_len = len(packed.data)
    available = len(packed.end_map) * 8
    if data_len > available:
        # Same failure the per-bit kernel hits decoding a short end map.
        raise ValueError(f"bit_count {data_len} exceeds available bits {available}")
    end_word = int.from_bytes(packed.end_map, "big")
    # Only the first ``data_len`` end-map bits are meaningful; bits in the
    # end map's own tail padding are ignored, as in the per-bit kernel.
    if data_len < available:
        end_word >>= available - data_len
    start = 0
    while end_word:
        msb = end_word.bit_length() - 1
        position = data_len - 1 - msb  # set bits surface MSB-first = in order
        yield (start, position)
        start = position + 1
        end_word &= (1 << msb) - 1


def unpack_word_items(packed: PackedArray) -> List[Tuple[int, int]]:
    """Inverse of :func:`pack_word_items`: recover ``(payload, width)`` words."""
    items: List[Tuple[int, int]] = []
    consumed = 0
    # One memoryview over the packed data: per-item slices below are
    # zero-copy views instead of per-item bytes copies.
    data = memoryview(packed.data)
    for start, end in _item_extents(packed):
        word = int.from_bytes(data[start : end + 1], "big")
        if word == 0:
            raise FormatError("packed item contains no end bit")
        # The end bit is the item's last set bit; everything above it is
        # payload, everything below is byte-alignment padding.
        pad = trailing_zeros(word)
        width = (end + 1 - start) * 8 - pad - 1
        items.append((word >> (pad + 1), width))
        consumed = end + 1
    if len(items) != packed.item_count:
        raise FormatError(
            f"end map yields {len(items)} items, expected {packed.item_count}"
        )
    if consumed != len(packed.data):
        raise FormatError(
            f"{len(packed.data) - consumed} trailing packed bytes after last item"
        )
    return items


# -- numeric items (reference relative addresses) -----------------------------------


def pack_items(values: Sequence[int]) -> PackedArray:
    """Pack non-negative integers, keeping only significant bits (Figure 5a).

    The loop body is :func:`pack_word_items` with the width derived inline
    (significant bits) and the redundant fits-in-width check dropped —
    this is the single hottest kernel in the encoder, so it earns the
    hand-inlining.
    """
    data = bytearray()
    end_positions: List[int] = []
    append_end = end_positions.append
    for value in values:
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        nbits = (value.bit_length() or 1) + 1  # payload + end bit
        nbytes = (nbits + 7) >> 3
        data += (((value << 1) | 1) << ((nbytes << 3) - nbits)).to_bytes(
            nbytes, "big"
        )
        append_end(len(data) - 1)
    end_map = bytearray((len(data) + 7) >> 3)
    for position in end_positions:
        end_map[position >> 3] |= 0x80 >> (position & 7)
    return PackedArray(
        data=bytes(data), end_map=bytes(end_map), item_count=len(values)
    )


def unpack_items(packed: PackedArray) -> List[int]:
    """Inverse of :func:`pack_items` (hand-inlined hot path).

    The packed data is sliced through a single ``memoryview`` so each
    item read is a zero-copy view, not a per-item bytes allocation.
    """
    data = memoryview(packed.data)
    data_len = len(data)
    available = len(packed.end_map) * 8
    if data_len > available:
        raise ValueError(f"bit_count {data_len} exceeds available bits {available}")
    end_word = int.from_bytes(packed.end_map, "big")
    if data_len < available:
        end_word >>= available - data_len
    out: List[int] = []
    append = out.append
    start = 0
    while end_word:
        msb = end_word.bit_length() - 1
        end = data_len - 1 - msb
        word = int.from_bytes(data[start : end + 1], "big")
        if word == 0:
            raise FormatError("packed item contains no end bit")
        pad = (word & -word).bit_length() - 1
        append(word >> (pad + 1))
        start = end + 1
        end_word &= (1 << msb) - 1
    if len(out) != packed.item_count:
        raise FormatError(
            f"end map yields {len(out)} items, expected {packed.item_count}"
        )
    if start != data_len:
        raise FormatError(
            f"{data_len - start} trailing packed bytes after last item"
        )
    return out


# -- bitmap items (per-object layout bitmaps) ------------------------------------------


def pack_bitmap_words(bitmaps: Sequence[Tuple[int, int]]) -> PackedArray:
    """Pack layout bitmaps given as ``(bits_as_int, bit_length)`` words.

    The full bit string is kept (its length encodes the object size),
    terminated by the end bit like any other item. This is the fast path
    the Cereal encoder feeds from the per-klass layout cache.
    """
    for value, width in bitmaps:
        if width < 1:
            raise FormatError("layout bitmap must be non-empty")
        if value < 0 or value.bit_length() > width:
            raise FormatError(
                f"bitmap word {value} does not fit in {width} bits"
            )
    return pack_word_items(bitmaps)


def unpack_bitmap_words(packed: PackedArray) -> List[Tuple[int, int]]:
    """Inverse of :func:`pack_bitmap_words`."""
    return unpack_word_items(packed)


def pack_bitmaps(bitmaps: Sequence[Sequence[int]]) -> PackedArray:
    """Pack layout bitmaps given as bit lists (compatibility surface)."""
    words: List[Tuple[int, int]] = []
    for bitmap in bitmaps:
        if len(bitmap) == 0:
            raise FormatError("layout bitmap must be non-empty")
        try:
            words.append(bits_to_word(bitmap))
        except ValueError:
            raise FormatError("layout bitmap must contain only 0/1") from None
    return pack_word_items(words)


def unpack_bitmaps(packed: PackedArray) -> List[List[int]]:
    """Inverse of :func:`pack_bitmaps`."""
    return [word_to_bits(value, width) for value, width in unpack_word_items(packed)]


# -- analytical helpers -----------------------------------------------------------------


def packed_size_bytes(values: Sequence[int]) -> int:
    """Total packed bytes (data + end map) for ``values`` without packing."""
    data_bytes = sum(
        ((value.bit_length() or 1) + 1 + 7) // 8 for value in values
    )
    end_map_bytes = (data_bytes + 7) // 8
    return data_bytes + end_map_bytes


def unpacked_size_bytes(values: Sequence[int], fixed_width: int = 8) -> int:
    """Size if each value were stored at ``fixed_width`` bytes (baseline)."""
    return len(values) * fixed_width


def compression_ratio(values: Sequence[int], fixed_width: int = 8) -> float:
    """Space saved by packing relative to the fixed-width baseline."""
    baseline = unpacked_size_bytes(values, fixed_width)
    if baseline == 0:
        return 0.0
    return 1.0 - packed_size_bytes(values) / baseline
