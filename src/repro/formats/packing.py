"""Cereal's object packing scheme (paper Section IV-B, Figure 5).

The baseline Cereal format would need either an 8 B length per layout bitmap
or wasteful fixed-size buckets. The packing scheme instead stores, for each
item (a reference's relative address, or an object's layout bitmap):

1. the item's *significant bits* — leading zeros dropped for numeric items,
   the full bit string for bitmaps — followed by a single **end bit** (1);
2. the resulting bit string, zero-padded at the tail into 1-byte buckets;
3. one **end map** bit per packed byte, set on the final byte of each item,
   so boundaries cost 1/8 of the packed size instead of a length word.

Decoding uses the end map to find each item's byte extent, then locates the
item's *last set bit* — the end bit — and takes everything before it as the
payload. This is lossless because the end bit is always the last 1 in the
item's buckets (padding is all zeros).

The same scheme packs both the reference array and the layout bitmaps
(Section IV-B: "we apply this object packing scheme to both the layout
bitmap and references"). Hardware cost: the SU's reference array writer and
the DU's unpackers implement exactly these loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.bitutils import (
    bits_to_bytes,
    bytes_to_bits,
    int_to_bits,
    significant_bits,
)
from repro.common.errors import FormatError


@dataclass(frozen=True)
class PackedArray:
    """A packed item stream plus its end map."""

    data: bytes
    end_map: bytes
    item_count: int

    @property
    def total_bytes(self) -> int:
        return len(self.data) + len(self.end_map)


def _pack_bit_items(items: Sequence[Sequence[int]]) -> PackedArray:
    """Pack pre-extracted significant-bit strings into buckets + end map."""
    packed_bits: List[int] = []
    end_positions: List[int] = []  # index of each item's final byte
    for bits in items:
        item_bits = list(bits) + [1]  # append the end bit
        # Pad this item to a whole number of 1 B buckets.
        padding = (-len(item_bits)) % 8
        item_bits.extend([0] * padding)
        packed_bits.extend(item_bits)
        end_positions.append(len(packed_bits) // 8 - 1)

    data = bits_to_bytes(packed_bits)
    end_map_bits = [0] * len(data)
    for position in end_positions:
        end_map_bits[position] = 1
    return PackedArray(
        data=data, end_map=bits_to_bytes(end_map_bits), item_count=len(items)
    )


def _unpack_bit_items(packed: PackedArray) -> List[List[int]]:
    """Inverse of :func:`_pack_bit_items`: recover each item's bit payload."""
    end_bits = bytes_to_bits(packed.end_map, bit_count=len(packed.data))
    items: List[List[int]] = []
    start_byte = 0
    for index, is_end in enumerate(end_bits):
        if not is_end:
            continue
        bucket_bits = bytes_to_bits(packed.data[start_byte : index + 1])
        # The end bit is the last set bit; payload is everything before it.
        last_one = -1
        for position, bit in enumerate(bucket_bits):
            if bit:
                last_one = position
        if last_one < 0:
            raise FormatError("packed item contains no end bit")
        items.append(bucket_bits[:last_one])
        start_byte = index + 1
    if len(items) != packed.item_count:
        raise FormatError(
            f"end map yields {len(items)} items, expected {packed.item_count}"
        )
    if start_byte != len(packed.data):
        raise FormatError(
            f"{len(packed.data) - start_byte} trailing packed bytes after last item"
        )
    return items


# -- numeric items (reference relative addresses) -----------------------------------


def pack_items(values: Sequence[int]) -> PackedArray:
    """Pack non-negative integers, keeping only significant bits (Figure 5a)."""
    bit_items = [int_to_bits(value, significant_bits(value)) for value in values]
    return _pack_bit_items(bit_items)


def unpack_items(packed: PackedArray) -> List[int]:
    """Inverse of :func:`pack_items`."""
    out: List[int] = []
    for bits in _unpack_bit_items(packed):
        value = 0
        for bit in bits:
            value = (value << 1) | bit
        out.append(value)
    return out


# -- bitmap items (per-object layout bitmaps) ------------------------------------------


def pack_bitmaps(bitmaps: Sequence[Sequence[int]]) -> PackedArray:
    """Pack layout bitmaps. The full bit string is kept (its length encodes
    the object size), terminated by the end bit like any other item."""
    for bitmap in bitmaps:
        if len(bitmap) == 0:
            raise FormatError("layout bitmap must be non-empty")
        if any(bit not in (0, 1) for bit in bitmap):
            raise FormatError("layout bitmap must contain only 0/1")
    return _pack_bit_items([list(bitmap) for bitmap in bitmaps])


def unpack_bitmaps(packed: PackedArray) -> List[List[int]]:
    """Inverse of :func:`pack_bitmaps`."""
    return _unpack_bit_items(packed)


# -- analytical helpers -----------------------------------------------------------------


def packed_size_bytes(values: Sequence[int]) -> int:
    """Total packed bytes (data + end map) for ``values`` without packing."""
    data_bytes = sum(
        (significant_bits(value) + 1 + 7) // 8 for value in values
    )
    end_map_bytes = (data_bytes + 7) // 8
    return data_bytes + end_map_bytes


def unpacked_size_bytes(values: Sequence[int], fixed_width: int = 8) -> int:
    """Size if each value were stored at ``fixed_width`` bytes (baseline)."""
    return len(values) * fixed_width


def compression_ratio(values: Sequence[int], fixed_width: int = 8) -> float:
    """Space saved by packing relative to the fixed-width baseline."""
    baseline = unpacked_size_bytes(values, fixed_width)
    if baseline == 0:
        return 0.0
    return 1.0 - packed_size_bytes(values) / baseline
