"""Java built-in object serialization (``ObjectOutputStream`` model).

Reproduces the serialized-stream structure of paper Figure 1(b) and the
behaviours Section II calls out as expensive:

* every class is described *by name*: the class name string, a
  serialVersionUID, and per-field metadata (type code + field name string,
  plus a type string for reference fields) are embedded in the stream;
* field values are extracted through ``java.lang.reflect`` — modelled by the
  :class:`~repro.jvm.reflection.JavaReflection` shim, which accounts the
  string-matching work that dominates Java S/D time;
* previously-visited objects are written as a 5-byte back reference
  (``TC_REFERENCE`` + handle), which also makes cyclic graphs safe.

Stream grammar (tag bytes follow the real Java protocol values):

    stream    := MAGIC(2) VERSION(2) content
    content   := TC_NULL
               | TC_REFERENCE handle(4)
               | TC_OBJECT classdesc field-values...
               | TC_ARRAY classdesc length(4) elements...
    classdesc := TC_CLASSDESC nameUTF uid(8) flags(1) nfields(2)
                 { typecode(1) nameUTF [typestringUTF] }...
               | TC_REFERENCE handle(4)

Reference-typed fields and array elements recurse into ``content``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, Optional

from repro.common.errors import FormatError
from repro.formats.base import (
    DeserializationResult,
    SerializationResult,
    SerializedStream,
    Serializer,
    WorkProfile,
)
from repro.formats.streams import StreamReader, StreamWriter
from repro.jvm.graph import ObjectGraph
from repro.jvm.heap import Heap, HeapObject
from repro.jvm.klass import ArrayKlass, FieldKind, InstanceKlass, Klass
from repro.jvm.reflection import JavaReflection

MAGIC = 0xACED
VERSION = 5

TC_NULL = 0x70
TC_REFERENCE = 0x71
TC_CLASSDESC = 0x72
TC_OBJECT = 0x73
TC_ARRAY = 0x75

SC_SERIALIZABLE = 0x02

_TYPE_CODES = {
    FieldKind.BOOLEAN: ord("Z"),
    FieldKind.BYTE: ord("B"),
    FieldKind.CHAR: ord("C"),
    FieldKind.SHORT: ord("S"),
    FieldKind.INT: ord("I"),
    FieldKind.FLOAT: ord("F"),
    FieldKind.LONG: ord("J"),
    FieldKind.DOUBLE: ord("D"),
    FieldKind.REFERENCE: ord("L"),
}
_KIND_BY_CODE = {code: kind for kind, code in _TYPE_CODES.items()}

_REFERENCE_TYPE_STRING = "Ljava/lang/Object;"

_SECTION_META = "metadata"
_SECTION_TYPES = "type_strings"
_SECTION_DATA = "field_data"
_SECTION_REFS = "back_references"

# Instruction-cost constants for the WorkProfile. Calibrated so the CPU
# model lands the paper's measured ratios (Figures 3 and 10): Java S/D is
# the slowest library, its deserializer catastrophically so (52x slower
# than Kryo's), with IPC around 1. The serializer side is dominated by the
# handle-table insert, ObjectStreamClass lookup, and block-data framing per
# object; the deserializer additionally pays reflective type resolution and
# per-field string-matched assignment.
_INSTR_PER_OBJECT = 7000  # writeObject0: handle table, desc lookup, framing
_INSTR_PER_PRIMITIVE = 400  # reflective extract + widen + block write
_INSTR_PER_REFERENCE = 700  # reflective get + null/visited checks + recursion
_INSTR_PER_STREAM_BYTE = 1  # buffer copy amortized
_INSTR_PER_OBJECT_DESER = 28000  # readObject0: desc resolution, security
_INSTR_PER_FIELD_DESER = 3000  # reflective Field.set with boxing
_INSTR_PER_ALLOC = 600  # reflective newInstance
_INSTR_PER_CLASSDESC = 2000  # class lookup by name, descriptor construction
_AUX_ACCESSES_PER_OBJECT_SER = 20  # handle-table + desc-cache probes
_AUX_ACCESSES_PER_OBJECT_DESER = 30  # handle table, Field cache, ctor cache


def serial_version_uid(klass: Klass) -> int:
    """Deterministic 64-bit UID from the class name and field signature."""
    h = hashlib.sha256(klass.name.encode("utf-8"))
    if isinstance(klass, InstanceKlass):
        for descriptor in klass.fields:
            h.update(descriptor.name.encode("utf-8"))
            h.update(descriptor.kind.value.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little")


class JavaSerializer(Serializer):
    """The baseline Java built-in serializer (paper "Java S/D")."""

    name = "java-builtin"

    # ------------------------------------------------------------------ serialize

    def serialize(self, root: HeapObject) -> SerializationResult:
        writer = StreamWriter()
        profile = WorkProfile()
        reflect = JavaReflection()
        handles: Dict[int, int] = {}  # heap address -> stream handle
        class_handles: Dict[str, int] = {}
        next_handle = [0]

        writer.write_u16(MAGIC, _SECTION_META)
        writer.write_u16(VERSION, _SECTION_META)

        def assign_handle() -> int:
            handle = next_handle[0]
            next_handle[0] += 1
            return handle

        def write_class_desc(klass: Klass) -> None:
            existing = class_handles.get(klass.name)
            if existing is not None:
                writer.write_u8(TC_REFERENCE, _SECTION_REFS)
                writer.write_u32(existing, _SECTION_REFS)
                return
            writer.write_u8(TC_CLASSDESC, _SECTION_META)
            writer.write_utf(klass.name, _SECTION_TYPES)
            writer.write_u64(serial_version_uid(klass), _SECTION_META)
            writer.write_u8(SC_SERIALIZABLE, _SECTION_META)
            if isinstance(klass, InstanceKlass):
                writer.write_u16(len(klass.fields), _SECTION_META)
                for descriptor in klass.fields:
                    writer.write_u8(_TYPE_CODES[descriptor.kind], _SECTION_META)
                    writer.write_utf(descriptor.name, _SECTION_TYPES)
                    if descriptor.kind.is_reference:
                        writer.write_utf(_REFERENCE_TYPE_STRING, _SECTION_TYPES)
            else:
                assert isinstance(klass, ArrayKlass)
                writer.write_u16(0, _SECTION_META)
                writer.write_u8(_TYPE_CODES[klass.element_kind], _SECTION_META)
            class_handles[klass.name] = assign_handle()
            profile.add_instructions(_INSTR_PER_CLASSDESC)

        def write_primitive(kind: FieldKind, value) -> None:
            if kind is FieldKind.BOOLEAN:
                writer.write_u8(1 if value else 0, _SECTION_DATA)
            elif kind is FieldKind.BYTE:
                writer.write_bytes(
                    (int(value) & 0xFF).to_bytes(1, "little"), _SECTION_DATA
                )
            elif kind is FieldKind.CHAR:
                writer.write_u16(int(value) & 0xFFFF, _SECTION_DATA)
            elif kind is FieldKind.SHORT:
                writer.write_u16(int(value) & 0xFFFF, _SECTION_DATA)
            elif kind is FieldKind.INT:
                writer.write_bytes(
                    (int(value) & 0xFFFFFFFF).to_bytes(4, "little"), _SECTION_DATA
                )
            elif kind is FieldKind.FLOAT:
                import struct as _struct

                writer.write_bytes(
                    _struct.pack("<f", float(value)), _SECTION_DATA
                )
            elif kind is FieldKind.LONG:
                writer.write_i64(int(value), _SECTION_DATA)
            elif kind is FieldKind.DOUBLE:
                writer.write_f64(float(value), _SECTION_DATA)
            else:  # pragma: no cover - guarded by callers
                raise FormatError(f"not a primitive kind: {kind}")
            profile.value_fields += 1
            profile.add_instructions(_INSTR_PER_PRIMITIVE)

        def emit_object(obj: HeapObject) -> Iterator[Optional[HeapObject]]:
            """Generator writing one object; yields reference children."""
            profile.objects += 1
            profile.add_instructions(_INSTR_PER_OBJECT)
            profile.aux_random_accesses += _AUX_ACCESSES_PER_OBJECT_SER
            profile.dependent_loads += 2  # header + klass metadata chase
            if isinstance(obj.klass, ArrayKlass):
                writer.write_u8(TC_ARRAY, _SECTION_META)
                write_class_desc(obj.klass)
                handles[obj.address] = assign_handle()
                writer.write_u32(obj.length, _SECTION_META)
                if obj.klass.element_kind.is_reference:
                    for index in range(obj.length):
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_REFERENCE)
                        yield obj.get_element(index)  # type: ignore[misc]
                else:
                    # One bulk heap read for the whole element storage; the
                    # per-element stream encoding (and accounting) is
                    # unchanged.
                    element_kind = obj.klass.element_kind
                    for value in obj.get_elements():
                        write_primitive(element_kind, value)
            else:
                klass = obj.klass
                assert isinstance(klass, InstanceKlass)
                writer.write_u8(TC_OBJECT, _SECTION_META)
                write_class_desc(klass)
                handles[obj.address] = assign_handle()
                for descriptor in klass.fields:
                    if descriptor.kind.is_reference:
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_REFERENCE)
                        profile.dependent_loads += 1
                        yield reflect.get_field(obj, descriptor.name)  # type: ignore[misc]
                    else:
                        write_primitive(
                            descriptor.kind, reflect.get_field(obj, descriptor.name)
                        )

        # Iterative driver: keeps the Java recursive write order without
        # Python recursion-depth limits on deep lists.
        stack = [emit_object(root)]
        while stack:
            try:
                child = next(stack[-1])
            except StopIteration:
                stack.pop()
                continue
            if child is None:
                writer.write_u8(TC_NULL, _SECTION_REFS)
            elif child.address in handles:
                writer.write_u8(TC_REFERENCE, _SECTION_REFS)
                writer.write_u32(handles[child.address], _SECTION_REFS)
            else:
                stack.append(emit_object(child))

        data = writer.getvalue()
        profile.add_instructions(reflect.cost.estimated_instructions())
        profile.add_instructions(len(data) * _INSTR_PER_STREAM_BYTE)
        profile.bytes_read = ObjectGraph.from_root(root).total_bytes
        profile.bytes_written = len(data)
        stream = SerializedStream(
            format_name=self.name,
            data=data,
            sections=dict(writer.sections),
            object_count=profile.objects,
            graph_bytes=profile.bytes_read,
        )
        stream.check_sections()
        return SerializationResult(stream, profile)

    # ---------------------------------------------------------------- deserialize

    def deserialize(
        self, stream: SerializedStream, heap: Heap
    ) -> DeserializationResult:
        reader = StreamReader(stream.data)
        profile = WorkProfile()
        reflect = JavaReflection()
        handle_table: Dict[int, object] = {}  # handle -> HeapObject or Klass
        next_handle = [0]

        if reader.read_u16() != MAGIC or reader.read_u16() != VERSION:
            raise FormatError("bad Java serialization stream header")

        def assign_handle(value: object) -> None:
            handle_table[next_handle[0]] = value
            next_handle[0] += 1

        def read_class_desc() -> Klass:
            tag = reader.read_u8()
            if tag == TC_REFERENCE:
                value = handle_table.get(reader.read_u32())
                if not isinstance(value, Klass):
                    raise FormatError("class-descriptor handle resolves to non-class")
                return value
            if tag != TC_CLASSDESC:
                raise FormatError(f"expected class descriptor, got tag {tag:#x}")
            name = reader.read_utf()
            uid = reader.read_u64()
            reader.read_u8()  # flags
            # Resolving a class by name: the expensive string lookup the
            # paper blames for Java S/D type-resolution overhead.
            profile.add_instructions(_INSTR_PER_CLASSDESC + len(name) * 2)
            klass = heap.registry.by_name(name)
            if serial_version_uid(klass) != uid:
                raise FormatError(f"serialVersionUID mismatch for {name}")
            if isinstance(klass, InstanceKlass):
                nfields = reader.read_u16()
                if nfields != len(klass.fields):
                    raise FormatError(f"field count mismatch for {name}")
                for descriptor in klass.fields:
                    code = reader.read_u8()
                    if _KIND_BY_CODE.get(code) is not descriptor.kind:
                        raise FormatError(f"field kind mismatch in {name}")
                    reader.read_utf()  # field name
                    if descriptor.kind.is_reference:
                        reader.read_utf()  # type string
            else:
                reader.read_u16()
                reader.read_u8()
            assign_handle(klass)
            return klass

        def read_primitive(kind: FieldKind):
            import struct as _struct

            if kind is FieldKind.BOOLEAN:
                return bool(reader.read_u8())
            if kind is FieldKind.BYTE:
                raw = reader.read_u8()
                return raw - 256 if raw >= 128 else raw
            if kind is FieldKind.CHAR:
                return reader.read_u16()
            if kind is FieldKind.SHORT:
                raw = reader.read_u16()
                return raw - 65536 if raw >= 32768 else raw
            if kind is FieldKind.INT:
                return reader.read_i32()
            if kind is FieldKind.FLOAT:
                return _struct.unpack("<f", reader.read_bytes(4))[0]
            if kind is FieldKind.LONG:
                return reader.read_i64()
            if kind is FieldKind.DOUBLE:
                return reader.read_f64()
            raise FormatError(f"not a primitive kind: {kind}")

        def parse_object(tag: int, holder: list):
            """Generator parsing one object; yields to request a reference.

            Appends the allocated object to ``holder`` so the driver can
            recover it when the generator finishes.
            """
            klass = read_class_desc()
            profile.objects += 1
            profile.allocations += 1
            profile.add_instructions(_INSTR_PER_OBJECT_DESER + _INSTR_PER_ALLOC)
            profile.aux_random_accesses += _AUX_ACCESSES_PER_OBJECT_DESER
            if tag == TC_ARRAY:
                if not isinstance(klass, ArrayKlass):
                    raise FormatError("TC_ARRAY with non-array class")
                length = reader.read_u32()
                obj = heap.allocate(klass, length)
                assign_handle(obj)
                holder.append(obj)
                if klass.element_kind.is_reference:
                    for index in range(length):
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_FIELD_DESER)
                        child = yield obj
                        obj.set_element(index, child)
                else:
                    # Decode the whole element run, then commit it with one
                    # bulk heap write; stream decode order and accounting
                    # are unchanged.
                    values = []
                    for index in range(length):
                        values.append(read_primitive(klass.element_kind))
                        profile.value_fields += 1
                        # Primitive array elements bypass reflection.
                        profile.add_instructions(_INSTR_PER_PRIMITIVE // 4)
                    obj.set_elements(values)
            else:
                if not isinstance(klass, InstanceKlass):
                    raise FormatError("TC_OBJECT with array class")
                obj = heap.allocate(klass)
                assign_handle(obj)
                holder.append(obj)
                for descriptor in klass.fields:
                    if descriptor.kind.is_reference:
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_FIELD_DESER)
                        child = yield obj
                        reflect.set_field(obj, descriptor.name, child)
                    else:
                        value = read_primitive(descriptor.kind)
                        reflect.set_field(obj, descriptor.name, value)
                        profile.value_fields += 1
                        profile.add_instructions(_INSTR_PER_FIELD_DESER)
            return

        def start_content():
            """Read a content tag; returns ('value', v) or ('frame', gen, holder)."""
            tag = reader.read_u8()
            if tag == TC_NULL:
                return ("value", None, None)
            if tag == TC_REFERENCE:
                value = handle_table.get(reader.read_u32())
                if not isinstance(value, HeapObject):
                    raise FormatError("object handle resolves to non-object")
                return ("value", value, None)
            if tag in (TC_OBJECT, TC_ARRAY):
                holder: list = []
                return ("frame", parse_object(tag, holder), holder)
            raise FormatError(f"unexpected tag {tag:#x}")

        _UNSET = object()
        kind, payload, holder = start_content()
        if kind == "value":
            raise FormatError("stream root must be an object")
        stack = [(payload, holder)]
        pending = _UNSET
        root_obj: Optional[HeapObject] = None
        while stack:
            gen, gen_holder = stack[-1]
            try:
                if pending is _UNSET:
                    next(gen)
                else:
                    value, pending = pending, _UNSET
                    gen.send(value)
                # The generator requested one reference value.
                kind, payload, holder = start_content()
                if kind == "value":
                    pending = payload
                else:
                    stack.append((payload, holder))
            except StopIteration:
                stack.pop()
                if not gen_holder:
                    raise FormatError("object frame finished without allocating")
                finished = gen_holder[0]
                pending = finished
                root_obj = finished  # last finished frame is the root

        if not isinstance(root_obj, HeapObject):
            raise FormatError("deserialization produced no root object")
        profile.bytes_read = len(stream.data)
        profile.bytes_written = ObjectGraph.from_root(root_obj).total_bytes
        profile.add_instructions(reflect.cost.estimated_instructions())
        profile.add_instructions(len(stream.data) * _INSTR_PER_STREAM_BYTE)
        return DeserializationResult(root_obj, profile)
