"""Java built-in object serialization (``ObjectOutputStream`` model).

Reproduces the serialized-stream structure of paper Figure 1(b) and the
behaviours Section II calls out as expensive:

* every class is described *by name*: the class name string, a
  serialVersionUID, and per-field metadata (type code + field name string,
  plus a type string for reference fields) are embedded in the stream;
* field values are extracted through ``java.lang.reflect`` — modelled by the
  :class:`~repro.jvm.reflection.JavaReflection` shim, which accounts the
  string-matching work that dominates Java S/D time;
* previously-visited objects are written as a 5-byte back reference
  (``TC_REFERENCE`` + handle), which also makes cyclic graphs safe.

Stream grammar (tag bytes follow the real Java protocol values):

    stream    := MAGIC(2) VERSION(2) content
    content   := TC_NULL
               | TC_REFERENCE handle(4)
               | TC_OBJECT classdesc field-values...
               | TC_ARRAY classdesc length(4) elements...
    classdesc := TC_CLASSDESC nameUTF uid(8) flags(1) nfields(2)
                 { typecode(1) nameUTF [typestringUTF] }...
               | TC_REFERENCE handle(4)

Reference-typed fields and array elements recurse into ``content``.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Iterator, List, Optional

from repro.common.bufpool import acquire_buffer, release_buffer
from repro.common.errors import (
    FormatError,
    HeapError,
    TruncatedStreamError,
    UnknownClassError,
)
from repro.formats import codegen as CG
from repro.formats import plans as P
from repro.formats.base import (
    DeserializationResult,
    SerializationResult,
    SerializedStream,
    Serializer,
    WorkProfile,
)
from repro.formats.limits import DecodeLimits, resolve_limits
from repro.formats.streams import StreamReader, StreamWriter
from repro.jvm.graph import ObjectGraph
from repro.jvm.heap import Heap, HeapObject
from repro.jvm.klass import ArrayKlass, FieldKind, InstanceKlass, Klass
from repro.jvm.reflection import JavaReflection

MAGIC = 0xACED
VERSION = 5

TC_NULL = 0x70
TC_REFERENCE = 0x71
TC_CLASSDESC = 0x72
TC_OBJECT = 0x73
TC_ARRAY = 0x75

SC_SERIALIZABLE = 0x02

_TYPE_CODES = {
    FieldKind.BOOLEAN: ord("Z"),
    FieldKind.BYTE: ord("B"),
    FieldKind.CHAR: ord("C"),
    FieldKind.SHORT: ord("S"),
    FieldKind.INT: ord("I"),
    FieldKind.FLOAT: ord("F"),
    FieldKind.LONG: ord("J"),
    FieldKind.DOUBLE: ord("D"),
    FieldKind.REFERENCE: ord("L"),
}
_KIND_BY_CODE = {code: kind for kind, code in _TYPE_CODES.items()}

_REFERENCE_TYPE_STRING = "Ljava/lang/Object;"

_SECTION_META = "metadata"
_SECTION_TYPES = "type_strings"
_SECTION_DATA = "field_data"
_SECTION_REFS = "back_references"

# Instruction-cost constants for the WorkProfile. Calibrated so the CPU
# model lands the paper's measured ratios (Figures 3 and 10): Java S/D is
# the slowest library, its deserializer catastrophically so (52x slower
# than Kryo's), with IPC around 1. The serializer side is dominated by the
# handle-table insert, ObjectStreamClass lookup, and block-data framing per
# object; the deserializer additionally pays reflective type resolution and
# per-field string-matched assignment.
_INSTR_PER_OBJECT = 7000  # writeObject0: handle table, desc lookup, framing
_INSTR_PER_PRIMITIVE = 400  # reflective extract + widen + block write
_INSTR_PER_REFERENCE = 700  # reflective get + null/visited checks + recursion
_INSTR_PER_STREAM_BYTE = 1  # buffer copy amortized
_INSTR_PER_OBJECT_DESER = 28000  # readObject0: desc resolution, security
_INSTR_PER_FIELD_DESER = 3000  # reflective Field.set with boxing
_INSTR_PER_ALLOC = 600  # reflective newInstance
_INSTR_PER_CLASSDESC = 2000  # class lookup by name, descriptor construction
_AUX_ACCESSES_PER_OBJECT_SER = 20  # handle-table + desc-cache probes
_AUX_ACCESSES_PER_OBJECT_DESER = 30  # handle table, Field cache, ctor cache

_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I32 = struct.Struct("<i")
_MASK64 = (1 << 64) - 1
# The 4-byte stream prelude write_u16(MAGIC)+write_u16(VERSION) produces.
_STREAM_HEADER = struct.pack("<HH", MAGIC, VERSION)


def serial_version_uid(klass: Klass) -> int:
    """Deterministic 64-bit UID from the class name and field signature."""
    h = hashlib.sha256(klass.name.encode("utf-8"))
    if isinstance(klass, InstanceKlass):
        for descriptor in klass.fields:
            h.update(descriptor.name.encode("utf-8"))
            h.update(descriptor.kind.value.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little")


class JavaSerializer(Serializer):
    """The baseline Java built-in serializer (paper "Java S/D").

    ``use_plans=True`` (the default) routes S/D through the compiled-plan
    kernels of :mod:`repro.formats.plans`: byte-identical streams, heap
    images, sections, and work profiles, minus the per-object interpretive
    overhead. ``use_plans=False`` keeps the original field-by-field
    interpreter — the oracle the fuzz equivalence tests compare against.
    ``use_codegen=True`` is a tier above the plans: instance shapes run
    through generated straight-line kernels (:mod:`repro.formats.codegen`)
    over zero-copy heap views, still byte- and profile-identical.
    """

    name = "java-builtin"

    def __init__(self, use_plans: bool = True, use_codegen: bool = False):
        self.use_plans = use_plans
        self.use_codegen = use_codegen

    # ------------------------------------------------------------------ serialize

    def serialize(self, root: HeapObject) -> SerializationResult:
        if self.use_codegen:
            return self._serialize_codegen(root)
        if self.use_plans:
            return self._serialize_planned(root)
        writer = StreamWriter(pooled=True)
        profile = WorkProfile()
        reflect = JavaReflection()
        handles: Dict[int, int] = {}  # heap address -> stream handle
        class_handles: Dict[str, int] = {}
        next_handle = [0]

        writer.write_u16(MAGIC, _SECTION_META)
        writer.write_u16(VERSION, _SECTION_META)

        def assign_handle() -> int:
            handle = next_handle[0]
            next_handle[0] += 1
            return handle

        def write_class_desc(klass: Klass) -> None:
            existing = class_handles.get(klass.name)
            if existing is not None:
                writer.write_u8(TC_REFERENCE, _SECTION_REFS)
                writer.write_u32(existing, _SECTION_REFS)
                return
            writer.write_u8(TC_CLASSDESC, _SECTION_META)
            writer.write_utf(klass.name, _SECTION_TYPES)
            writer.write_u64(serial_version_uid(klass), _SECTION_META)
            writer.write_u8(SC_SERIALIZABLE, _SECTION_META)
            if isinstance(klass, InstanceKlass):
                writer.write_u16(len(klass.fields), _SECTION_META)
                for descriptor in klass.fields:
                    writer.write_u8(_TYPE_CODES[descriptor.kind], _SECTION_META)
                    writer.write_utf(descriptor.name, _SECTION_TYPES)
                    if descriptor.kind.is_reference:
                        writer.write_utf(_REFERENCE_TYPE_STRING, _SECTION_TYPES)
            else:
                assert isinstance(klass, ArrayKlass)
                writer.write_u16(0, _SECTION_META)
                writer.write_u8(_TYPE_CODES[klass.element_kind], _SECTION_META)
            class_handles[klass.name] = assign_handle()
            profile.add_instructions(_INSTR_PER_CLASSDESC)

        def write_primitive(kind: FieldKind, value) -> None:
            if kind is FieldKind.BOOLEAN:
                writer.write_u8(1 if value else 0, _SECTION_DATA)
            elif kind is FieldKind.BYTE:
                writer.write_bytes(
                    (int(value) & 0xFF).to_bytes(1, "little"), _SECTION_DATA
                )
            elif kind is FieldKind.CHAR:
                writer.write_u16(int(value) & 0xFFFF, _SECTION_DATA)
            elif kind is FieldKind.SHORT:
                writer.write_u16(int(value) & 0xFFFF, _SECTION_DATA)
            elif kind is FieldKind.INT:
                writer.write_bytes(
                    (int(value) & 0xFFFFFFFF).to_bytes(4, "little"), _SECTION_DATA
                )
            elif kind is FieldKind.FLOAT:
                import struct as _struct

                writer.write_bytes(
                    _struct.pack("<f", float(value)), _SECTION_DATA
                )
            elif kind is FieldKind.LONG:
                writer.write_i64(int(value), _SECTION_DATA)
            elif kind is FieldKind.DOUBLE:
                writer.write_f64(float(value), _SECTION_DATA)
            else:  # pragma: no cover - guarded by callers
                raise FormatError(f"not a primitive kind: {kind}")
            profile.value_fields += 1
            profile.add_instructions(_INSTR_PER_PRIMITIVE)

        def emit_object(obj: HeapObject) -> Iterator[Optional[HeapObject]]:
            """Generator writing one object; yields reference children."""
            profile.objects += 1
            profile.add_instructions(_INSTR_PER_OBJECT)
            profile.aux_random_accesses += _AUX_ACCESSES_PER_OBJECT_SER
            profile.dependent_loads += 2  # header + klass metadata chase
            if isinstance(obj.klass, ArrayKlass):
                writer.write_u8(TC_ARRAY, _SECTION_META)
                write_class_desc(obj.klass)
                handles[obj.address] = assign_handle()
                writer.write_u32(obj.length, _SECTION_META)
                if obj.klass.element_kind.is_reference:
                    for index in range(obj.length):
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_REFERENCE)
                        yield obj.get_element(index)  # type: ignore[misc]
                else:
                    # One bulk heap read for the whole element storage; the
                    # per-element stream encoding (and accounting) is
                    # unchanged.
                    element_kind = obj.klass.element_kind
                    for value in obj.get_elements():
                        write_primitive(element_kind, value)
            else:
                klass = obj.klass
                assert isinstance(klass, InstanceKlass)
                writer.write_u8(TC_OBJECT, _SECTION_META)
                write_class_desc(klass)
                handles[obj.address] = assign_handle()
                for descriptor in klass.fields:
                    if descriptor.kind.is_reference:
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_REFERENCE)
                        profile.dependent_loads += 1
                        yield reflect.get_field(obj, descriptor.name)  # type: ignore[misc]
                    else:
                        write_primitive(
                            descriptor.kind, reflect.get_field(obj, descriptor.name)
                        )

        # Iterative driver: keeps the Java recursive write order without
        # Python recursion-depth limits on deep lists.
        stack = [emit_object(root)]
        while stack:
            try:
                child = next(stack[-1])
            except StopIteration:
                stack.pop()
                continue
            if child is None:
                writer.write_u8(TC_NULL, _SECTION_REFS)
            elif child.address in handles:
                writer.write_u8(TC_REFERENCE, _SECTION_REFS)
                writer.write_u32(handles[child.address], _SECTION_REFS)
            else:
                stack.append(emit_object(child))

        data = writer.detach()
        profile.add_instructions(reflect.cost.estimated_instructions())
        profile.add_instructions(len(data) * _INSTR_PER_STREAM_BYTE)
        profile.bytes_read = ObjectGraph.from_root(root).total_bytes
        profile.bytes_written = len(data)
        stream = SerializedStream(
            format_name=self.name,
            data=data,
            sections=dict(writer.sections),
            object_count=profile.objects,
            graph_bytes=profile.bytes_read,
        )
        stream.check_sections()
        return SerializationResult(stream, profile)

    # ------------------------------------------------------- serialize (plan kernel)

    def _serialize_planned(self, root: HeapObject) -> SerializationResult:
        """Compiled-plan serialize: byte-identical to the interpreter.

        Per object: one plan-cache probe, one bulk image read, then a
        straight-line replay of the plan's merged copy/convert/ref ops into
        a pooled output arena. Profile deltas come pre-summed from the
        plan, so the resulting :class:`WorkProfile` matches the
        interpreter's exactly.
        """
        heap = root.heap
        read = heap.memory.read
        object_at = heap.object_at
        header_slots = heap.header_slots

        out = acquire_buffer()
        out += _STREAM_HEADER
        meta_count = 4
        type_count = 0
        data_count = 0
        ref_count = 0

        handles: Dict[int, int] = {}  # heap address -> stream handle
        class_handles: Dict[str, int] = {}
        next_handle = 0

        objects = 0
        instr = 0
        reflect_instr = 0
        aux = 0
        dep = 0
        value_fields = 0
        reference_fields = 0
        graph_bytes = 0

        plans_local: Dict[Klass, object] = {}

        def emit(obj: HeapObject):
            """Emit one object's prelude; returns a frame if it has refs."""
            nonlocal out, meta_count, type_count, data_count, ref_count, next_handle
            nonlocal objects, instr, reflect_instr, aux, dep
            nonlocal value_fields, reference_fields, graph_bytes
            klass = obj.klass
            plan = plans_local.get(klass)
            if plan is None:
                plan = P.plan_for(self.name, klass, header_slots)
                plans_local[klass] = plan
            objects += 1
            aux += plan.ser_aux
            dep += plan.ser_dep
            is_array = klass.is_array
            out.append(TC_ARRAY if is_array else TC_OBJECT)
            meta_count += 1
            class_handle = class_handles.get(klass.name)
            if class_handle is None:
                out += plan.desc_blob
                meta_count += plan.desc_meta_bytes
                type_count += plan.desc_type_bytes
                class_handles[klass.name] = next_handle
                next_handle += 1
                instr += plan.desc_ser_instr
            else:
                out.append(TC_REFERENCE)
                out += _U32.pack(class_handle)
                ref_count += 5
            handles[obj.address] = next_handle
            next_handle += 1
            if is_array:
                length = obj.length
                out += _U32.pack(length)
                meta_count += 4
                instr += plan.ser_instr + length * plan.ser_elem_instr
                graph_bytes += obj.size_bytes
                element_base = obj.fields_base + 8
                if plan.is_ref:
                    reference_fields += length
                    if length:
                        addresses = struct.unpack(
                            f"<{length}Q", read(element_base, length * 8)
                        )
                        return [1, addresses, 0]
                    return None
                value_fields += length
                nbytes = length * plan.element_width
                if nbytes:
                    out += read(element_base, nbytes)
                    data_count += nbytes
                return None
            instr += plan.ser_instr
            reflect_instr += plan.ser_reflect_instr
            value_fields += plan.n_prim
            reference_fields += plan.n_ref
            data_count += plan.enc_data_bytes
            graph_bytes += plan.size_bytes
            raw = read(obj.address, plan.size_bytes)
            if plan.n_ref == 0:
                for op, start, end in plan.enc_ops:
                    if op == P.OP_COPY:
                        out += raw[start:end]
                    else:  # OP_FLOAT
                        out += _F32.pack(_F64.unpack_from(raw, start)[0])
                return None
            return [0, plan.enc_ops, 0, raw]

        frame = emit(root)
        stack: List[list] = [frame] if frame is not None else []
        while stack:
            frame = stack[-1]
            descend = None
            if frame[0] == 0:  # instance: interleaved copy/float/ref ops
                ops = frame[1]
                index = frame[2]
                raw = frame[3]
                op_count = len(ops)
                while index < op_count:
                    op, start, end = ops[index]
                    index += 1
                    if op == P.OP_COPY:
                        out += raw[start:end]
                    elif op == P.OP_FLOAT:
                        out += _F32.pack(_F64.unpack_from(raw, start)[0])
                    else:  # OP_REF
                        address = _U64.unpack_from(raw, start)[0]
                        if address == 0:
                            out.append(TC_NULL)
                            ref_count += 1
                        else:
                            handle = handles.get(address)
                            if handle is not None:
                                out.append(TC_REFERENCE)
                                out += _U32.pack(handle)
                                ref_count += 5
                            else:
                                descend = emit(object_at(address))
                                if descend is not None:
                                    break
                frame[2] = index
            else:  # reference array: a run of ref slots
                addresses = frame[1]
                index = frame[2]
                count = len(addresses)
                while index < count:
                    address = addresses[index]
                    index += 1
                    if address == 0:
                        out.append(TC_NULL)
                        ref_count += 1
                    else:
                        handle = handles.get(address)
                        if handle is not None:
                            out.append(TC_REFERENCE)
                            out += _U32.pack(handle)
                            ref_count += 5
                        else:
                            descend = emit(object_at(address))
                            if descend is not None:
                                break
                frame[2] = index
            if descend is not None:
                stack.append(descend)
            else:
                stack.pop()

        data = bytes(out)
        release_buffer(out)
        instr += reflect_instr + len(data) * _INSTR_PER_STREAM_BYTE
        profile = WorkProfile()
        profile.instructions = instr
        profile.objects = objects
        profile.value_fields = value_fields
        profile.reference_fields = reference_fields
        profile.dependent_loads = dep
        profile.aux_random_accesses = aux
        profile.bytes_read = graph_bytes
        profile.bytes_written = len(data)
        sections = {_SECTION_META: meta_count, _SECTION_TYPES: type_count}
        if data_count:
            sections[_SECTION_DATA] = data_count
        if ref_count:
            sections[_SECTION_REFS] = ref_count
        stream = SerializedStream(
            format_name=self.name,
            data=data,
            sections=sections,
            object_count=objects,
            graph_bytes=graph_bytes,
        )
        stream.check_sections()
        return SerializationResult(stream, profile)

    # ---------------------------------------------------- serialize (codegen kernel)

    def _serialize_codegen(self, root: HeapObject) -> SerializationResult:
        """Generated-kernel serialize: byte-identical to the plan tier.

        Per instance object: one per-call cell lookup, one fused
        tag+backref prefix append, one zero-copy :meth:`MemorySpace.view`
        of the raw image, then straight-line generated code. All
        shape-constant profile deltas are counted per shape and
        multiplied once at the end of the walk; only graph-dependent
        quantities (array lengths, null/backref bytes) accumulate inline.
        """
        heap = root.heap
        read = heap.memory.read
        view = heap.memory.view
        object_at = heap.object_at
        header_slots = heap.header_slots

        out = acquire_buffer()
        out += _STREAM_HEADER

        handles: Dict[int, int] = {}  # heap address -> stream handle
        class_handles: Dict[str, int] = {}
        next_handle = 0

        ref_count = 0
        data_dyn = 0
        instr_dyn = 0
        value_fields_dyn = 0
        reference_fields_dyn = 0
        graph_bytes_dyn = 0

        # klass -> [prefix, count, kind, plan, leaf, steps, size, wrote_desc]
        # kind: 0 = leaf instance, 1 = instance with refs, 2 = array
        cells: Dict[Klass, list] = {}

        def make_cell(klass: Klass) -> list:
            """First occurrence of a shape: emit its tag + class desc (or
            backref), compile/fetch its kernel, seed the count cell."""
            nonlocal out, next_handle
            plan = P.plan_for(self.name, klass, header_slots)
            is_array = klass.is_array
            tag = TC_ARRAY if is_array else TC_OBJECT
            class_handle = class_handles.get(klass.name)
            if class_handle is None:
                out.append(tag)
                out += plan.desc_blob
                class_handle = next_handle
                class_handles[klass.name] = class_handle
                next_handle += 1
                wrote_desc = True
            else:
                out.append(tag)
                out.append(TC_REFERENCE)
                out += _U32.pack(class_handle)
                wrote_desc = False
            prefix = bytes((tag, TC_REFERENCE)) + _U32.pack(class_handle)
            if is_array:
                cell = [prefix, 1, 2, plan, None, None, 0, wrote_desc]
            else:
                kernel = CG.encode_kernel_for(self.name, klass, header_slots, plan)
                kind = 0 if plan.n_ref == 0 else 1
                cell = [
                    prefix, 1, kind, plan,
                    kernel.leaf, kernel.steps, plan.size_bytes, wrote_desc,
                ]
            cells[klass] = cell
            return cell

        def emit(obj: HeapObject):
            """Emit one object's prelude; returns a frame if it has refs."""
            nonlocal out, next_handle, ref_count, data_dyn, instr_dyn
            nonlocal value_fields_dyn, reference_fields_dyn, graph_bytes_dyn
            klass = obj.klass
            cell = cells.get(klass)
            if cell is None:
                cell = make_cell(klass)
            else:
                out += cell[0]
                cell[1] += 1
            handles[obj.address] = next_handle
            next_handle += 1
            kind = cell[2]
            if kind == 0:  # leaf instance: one generated straight-line call
                cell[4](out, view(obj.address, cell[6]))
                return None
            if kind == 1:  # instance with reference fields
                return [0, cell[5], 0, view(obj.address, cell[6])]
            plan = cell[3]  # array: bulk element path, as in the plan tier
            length = obj.length
            out += _U32.pack(length)
            instr_dyn += length * plan.ser_elem_instr
            graph_bytes_dyn += obj.size_bytes
            element_base = obj.fields_base + 8
            if plan.is_ref:
                reference_fields_dyn += length
                if length:
                    addresses = struct.unpack(
                        f"<{length}Q", read(element_base, length * 8)
                    )
                    return [1, addresses, 0]
                return None
            value_fields_dyn += length
            nbytes = length * plan.element_width
            if nbytes:
                out += read(element_base, nbytes)
                data_dyn += nbytes
            return None

        frame = emit(root)
        stack: List[list] = [frame] if frame is not None else []
        while stack:
            frame = stack[-1]
            descend = None
            if frame[0] == 0:  # instance: generated segments + ref offsets
                steps = frame[1]
                index = frame[2]
                raw = frame[3]
                step_count = len(steps)
                while index < step_count:
                    step = steps[index]
                    index += 1
                    if step.__class__ is int:  # reference slot byte offset
                        address = _U64.unpack_from(raw, step)[0]
                        if address == 0:
                            out.append(TC_NULL)
                            ref_count += 1
                        else:
                            handle = handles.get(address)
                            if handle is not None:
                                out.append(TC_REFERENCE)
                                out += _U32.pack(handle)
                                ref_count += 5
                            else:
                                descend = emit(object_at(address))
                                if descend is not None:
                                    break
                    else:
                        step(out, raw)
                frame[2] = index
            else:  # reference array: a run of ref slots
                addresses = frame[1]
                index = frame[2]
                count = len(addresses)
                while index < count:
                    address = addresses[index]
                    index += 1
                    if address == 0:
                        out.append(TC_NULL)
                        ref_count += 1
                    else:
                        handle = handles.get(address)
                        if handle is not None:
                            out.append(TC_REFERENCE)
                            out += _U32.pack(handle)
                            ref_count += 5
                        else:
                            descend = emit(object_at(address))
                            if descend is not None:
                                break
                frame[2] = index
            if descend is not None:
                stack.append(descend)
            else:
                stack.pop()

        data = bytes(out)
        release_buffer(out)

        # Fold the shape-constant deltas: one multiply per shape, exactly
        # the numbers the plan tier accumulates per object.
        objects = 0
        instr = 0
        aux = 0
        dep = 0
        value_fields = value_fields_dyn
        reference_fields = reference_fields_dyn
        data_count = data_dyn
        graph_bytes = graph_bytes_dyn
        meta_count = 4
        type_count = 0
        for cell in cells.values():
            count = cell[1]
            plan = cell[3]
            objects += count
            aux += count * plan.ser_aux
            dep += count * plan.ser_dep
            if cell[2] == 2:  # array: tag byte + 4-byte length per object
                instr += count * plan.ser_instr
                meta_count += count * 5
            else:
                instr += count * (plan.ser_instr + plan.ser_reflect_instr)
                meta_count += count
                value_fields += count * plan.n_prim
                reference_fields += count * plan.n_ref
                data_count += count * plan.enc_data_bytes
                graph_bytes += count * plan.size_bytes
            if cell[7]:  # first occurrence wrote the full descriptor
                instr += plan.desc_ser_instr
                meta_count += plan.desc_meta_bytes
                type_count += plan.desc_type_bytes
                ref_count += 5 * (count - 1)
            else:  # every occurrence used a 5-byte class back reference
                ref_count += 5 * count
        instr += instr_dyn + len(data) * _INSTR_PER_STREAM_BYTE

        profile = WorkProfile()
        profile.instructions = instr
        profile.objects = objects
        profile.value_fields = value_fields
        profile.reference_fields = reference_fields
        profile.dependent_loads = dep
        profile.aux_random_accesses = aux
        profile.bytes_read = graph_bytes
        profile.bytes_written = len(data)
        sections = {_SECTION_META: meta_count, _SECTION_TYPES: type_count}
        if data_count:
            sections[_SECTION_DATA] = data_count
        if ref_count:
            sections[_SECTION_REFS] = ref_count
        stream = SerializedStream(
            format_name=self.name,
            data=data,
            sections=sections,
            object_count=objects,
            graph_bytes=graph_bytes,
        )
        stream.check_sections()
        return SerializationResult(stream, profile)

    # ---------------------------------------------------------------- deserialize

    def deserialize(
        self,
        stream: SerializedStream,
        heap: Heap,
        limits: Optional[DecodeLimits] = None,
    ) -> DeserializationResult:
        limits = resolve_limits(limits)
        if self.use_codegen:
            return self._deserialize_codegen(stream, heap, limits)
        if self.use_plans:
            return self._deserialize_planned(stream, heap, limits)
        limits.check_stream_bytes(len(stream.data))
        reader = StreamReader(stream.data)
        profile = WorkProfile()
        reflect = JavaReflection()
        handle_table: Dict[int, object] = {}  # handle -> HeapObject or Klass
        next_handle = [0]

        if reader.read_u16() != MAGIC or reader.read_u16() != VERSION:
            raise FormatError("bad Java serialization stream header")

        def assign_handle(value: object) -> None:
            handle_table[next_handle[0]] = value
            next_handle[0] += 1

        def read_class_desc() -> Klass:
            tag = reader.read_u8()
            if tag == TC_REFERENCE:
                value = handle_table.get(reader.read_u32())
                if not isinstance(value, Klass):
                    raise FormatError("class-descriptor handle resolves to non-class")
                return value
            if tag != TC_CLASSDESC:
                raise FormatError(f"expected class descriptor, got tag {tag:#x}")
            name = reader.read_utf()
            uid = reader.read_u64()
            reader.read_u8()  # flags
            # Resolving a class by name: the expensive string lookup the
            # paper blames for Java S/D type-resolution overhead.
            profile.add_instructions(_INSTR_PER_CLASSDESC + len(name) * 2)
            try:
                klass = heap.registry.by_name(name)
            except HeapError:
                raise UnknownClassError(
                    repr(name),
                    detail="class name not registered",
                    offset=reader.position,
                ) from None
            if serial_version_uid(klass) != uid:
                raise FormatError(f"serialVersionUID mismatch for {name}")
            if isinstance(klass, InstanceKlass):
                nfields = reader.read_u16()
                if nfields != len(klass.fields):
                    raise FormatError(f"field count mismatch for {name}")
                for descriptor in klass.fields:
                    code = reader.read_u8()
                    if _KIND_BY_CODE.get(code) is not descriptor.kind:
                        raise FormatError(f"field kind mismatch in {name}")
                    reader.read_utf()  # field name
                    if descriptor.kind.is_reference:
                        reader.read_utf()  # type string
            else:
                reader.read_u16()
                reader.read_u8()
            assign_handle(klass)
            return klass

        def read_primitive(kind: FieldKind):
            import struct as _struct

            if kind is FieldKind.BOOLEAN:
                return bool(reader.read_u8())
            if kind is FieldKind.BYTE:
                raw = reader.read_u8()
                return raw - 256 if raw >= 128 else raw
            if kind is FieldKind.CHAR:
                return reader.read_u16()
            if kind is FieldKind.SHORT:
                raw = reader.read_u16()
                return raw - 65536 if raw >= 32768 else raw
            if kind is FieldKind.INT:
                return reader.read_i32()
            if kind is FieldKind.FLOAT:
                return _struct.unpack("<f", reader.read_bytes(4))[0]
            if kind is FieldKind.LONG:
                return reader.read_i64()
            if kind is FieldKind.DOUBLE:
                return reader.read_f64()
            raise FormatError(f"not a primitive kind: {kind}")

        def parse_object(tag: int, holder: list):
            """Generator parsing one object; yields to request a reference.

            Appends the allocated object to ``holder`` so the driver can
            recover it when the generator finishes.
            """
            klass = read_class_desc()
            limits.check_objects(profile.objects + 1)
            profile.objects += 1
            profile.allocations += 1
            profile.add_instructions(_INSTR_PER_OBJECT_DESER + _INSTR_PER_ALLOC)
            profile.aux_random_accesses += _AUX_ACCESSES_PER_OBJECT_DESER
            if tag == TC_ARRAY:
                if not isinstance(klass, ArrayKlass):
                    raise FormatError("TC_ARRAY with non-array class")
                length = reader.read_u32()
                limits.check_array_length(length)
                obj = heap.allocate(klass, length)
                assign_handle(obj)
                holder.append(obj)
                if klass.element_kind.is_reference:
                    for index in range(length):
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_FIELD_DESER)
                        child = yield obj
                        obj.set_element(index, child)
                else:
                    # Decode the whole element run, then commit it with one
                    # bulk heap write; stream decode order and accounting
                    # are unchanged.
                    values = []
                    for index in range(length):
                        values.append(read_primitive(klass.element_kind))
                        profile.value_fields += 1
                        # Primitive array elements bypass reflection.
                        profile.add_instructions(_INSTR_PER_PRIMITIVE // 4)
                    obj.set_elements(values)
            else:
                if not isinstance(klass, InstanceKlass):
                    raise FormatError("TC_OBJECT with array class")
                obj = heap.allocate(klass)
                assign_handle(obj)
                holder.append(obj)
                for descriptor in klass.fields:
                    if descriptor.kind.is_reference:
                        profile.reference_fields += 1
                        profile.add_instructions(_INSTR_PER_FIELD_DESER)
                        child = yield obj
                        reflect.set_field(obj, descriptor.name, child)
                    else:
                        value = read_primitive(descriptor.kind)
                        reflect.set_field(obj, descriptor.name, value)
                        profile.value_fields += 1
                        profile.add_instructions(_INSTR_PER_FIELD_DESER)
            return

        def start_content():
            """Read a content tag; returns ('value', v) or ('frame', gen, holder)."""
            tag = reader.read_u8()
            if tag == TC_NULL:
                return ("value", None, None)
            if tag == TC_REFERENCE:
                value = handle_table.get(reader.read_u32())
                if not isinstance(value, HeapObject):
                    raise FormatError("object handle resolves to non-object")
                return ("value", value, None)
            if tag in (TC_OBJECT, TC_ARRAY):
                holder: list = []
                return ("frame", parse_object(tag, holder), holder)
            raise FormatError(f"unexpected tag {tag:#x}")

        _UNSET = object()
        kind, payload, holder = start_content()
        if kind == "value":
            raise FormatError("stream root must be an object")
        stack = [(payload, holder)]
        pending = _UNSET
        root_obj: Optional[HeapObject] = None
        while stack:
            gen, gen_holder = stack[-1]
            try:
                if pending is _UNSET:
                    next(gen)
                else:
                    value, pending = pending, _UNSET
                    gen.send(value)
                # The generator requested one reference value.
                kind, payload, holder = start_content()
                if kind == "value":
                    pending = payload
                else:
                    limits.check_depth(len(stack) + 1)
                    stack.append((payload, holder))
            except StopIteration:
                stack.pop()
                if not gen_holder:
                    raise FormatError("object frame finished without allocating")
                finished = gen_holder[0]
                pending = finished
                root_obj = finished  # last finished frame is the root

        if not isinstance(root_obj, HeapObject):
            raise FormatError("deserialization produced no root object")
        profile.bytes_read = len(stream.data)
        profile.bytes_written = ObjectGraph.from_root(root_obj).total_bytes
        profile.add_instructions(reflect.cost.estimated_instructions())
        profile.add_instructions(len(stream.data) * _INSTR_PER_STREAM_BYTE)
        return DeserializationResult(root_obj, profile)

    # ----------------------------------------------------- deserialize (plan kernel)

    @staticmethod
    def _slow_parse_class_desc(data: bytes, pos: int, klass: Klass, name: str) -> int:
        """Field-by-field descriptor parse, used when the fast byte compare
        against the plan's expected descriptor fails.

        Replicates the interpreter exactly — including its leniency about
        field-name strings (read and discarded) and its precise error
        messages for uid/count/kind mismatches. Returns the new cursor.
        """
        reader = StreamReader(data)
        reader._pos = pos
        uid = reader.read_u64()
        reader.read_u8()  # flags
        if serial_version_uid(klass) != uid:
            raise FormatError(f"serialVersionUID mismatch for {name}")
        if isinstance(klass, InstanceKlass):
            nfields = reader.read_u16()
            if nfields != len(klass.fields):
                raise FormatError(f"field count mismatch for {name}")
            for descriptor in klass.fields:
                code = reader.read_u8()
                if _KIND_BY_CODE.get(code) is not descriptor.kind:
                    raise FormatError(f"field kind mismatch in {name}")
                reader.read_utf()  # field name
                if descriptor.kind.is_reference:
                    reader.read_utf()  # type string
        else:
            reader.read_u16()
            reader.read_u8()
        return reader._pos

    def _deserialize_planned(
        self, stream: SerializedStream, heap: Heap, limits: DecodeLimits
    ) -> DeserializationResult:
        """Compiled-plan deserialize: identical heap image and profile.

        Class descriptors are validated with one slice comparison against
        the plan's expected bytes; field values accumulate into a slot-word
        list committed with one bulk ``write_words`` per object, preserving
        the interpreter's allocation order (and therefore identity hashes).
        """
        data = stream.data
        n_data = len(data)
        limits.check_stream_bytes(n_data)
        max_objects = limits.max_objects
        max_array_length = limits.max_array_length
        max_depth = limits.max_depth
        memory = heap.memory
        header_slots = heap.header_slots
        pos = 0

        if n_data < 4:
            offset = 0 if n_data < 2 else 2
            raise TruncatedStreamError(
                offset=offset, needed=2, available=n_data - offset
            )
        if data[:4] != _STREAM_HEADER:
            raise FormatError("bad Java serialization stream header")
        pos = 4

        handle_table: list = []  # Klass and HeapObject entries, handle order
        plans_local: Dict[Klass, object] = {}

        objects = 0
        allocations = 0
        instr = 0
        reflect_instr = 0
        aux = 0
        value_fields = 0
        reference_fields = 0
        graph_bytes = 0

        def underflow(count: int) -> FormatError:
            return TruncatedStreamError(
                offset=pos, needed=count, available=n_data - pos
            )

        def read_class_desc():
            """Parse a classdesc; returns ``(klass, plan)``."""
            nonlocal pos, instr
            if pos >= n_data:
                raise underflow(1)
            tag = data[pos]
            pos += 1
            if tag == TC_REFERENCE:
                if pos + 4 > n_data:
                    raise underflow(4)
                handle = _U32.unpack_from(data, pos)[0]
                pos += 4
                value = handle_table[handle] if handle < len(handle_table) else None
                if not isinstance(value, Klass):
                    raise FormatError(
                        "class-descriptor handle resolves to non-class"
                    )
                plan = plans_local.get(value)
                if plan is None:
                    plan = P.plan_for(self.name, value, header_slots)
                    plans_local[value] = plan
                return value, plan
            if tag != TC_CLASSDESC:
                raise FormatError(f"expected class descriptor, got tag {tag:#x}")
            if pos + 2 > n_data:
                raise underflow(2)
            name_length = data[pos] | (data[pos + 1] << 8)
            pos += 2
            if pos + name_length > n_data:
                raise underflow(name_length)
            try:
                name = data[pos:pos + name_length].decode("utf-8")
            except UnicodeDecodeError as error:
                raise FormatError(f"invalid UTF-8 in stream: {error}") from None
            pos += name_length
            try:
                klass = heap.registry.by_name(name)
            except HeapError:
                raise UnknownClassError(
                    repr(name), detail="class name not registered", offset=pos
                ) from None
            plan = plans_local.get(klass)
            if plan is None:
                plan = P.plan_for(self.name, klass, header_slots)
                plans_local[klass] = plan
            tail = plan.desc_tail
            if data[pos:pos + len(tail)] == tail:
                pos += len(tail)
            else:
                pos = self._slow_parse_class_desc(data, pos, klass, name)
            instr += plan.desc_de_instr
            handle_table.append(klass)
            return klass, plan

        def run_dec_ops(ops, index: int, words: list) -> int:
            """Execute decode ops until done or the next DOP_REF; returns
            the op index where execution stopped."""
            nonlocal pos, value_fields
            op_count = len(ops)
            while index < op_count:
                op, field_index, extra = ops[index]
                if op == P.DOP_REF:
                    return index
                if op == P.DOP_WORDS:
                    nbytes = extra * 8
                    if pos + nbytes > n_data:
                        raise underflow(nbytes)
                    words[field_index:field_index + extra] = struct.unpack_from(
                        f"<{extra}Q", data, pos
                    )
                    pos += nbytes
                elif op == P.DOP_INT:
                    if pos + 4 > n_data:
                        raise underflow(4)
                    words[field_index] = _I32.unpack_from(data, pos)[0] & _MASK64
                    pos += 4
                elif op == P.DOP_FLOAT:
                    if pos + 4 > n_data:
                        raise underflow(4)
                    words[field_index] = _U64.unpack(
                        _F64.pack(_F32.unpack_from(data, pos)[0])
                    )[0]
                    pos += 4
                elif op == P.DOP_BOOL:
                    if pos >= n_data:
                        raise underflow(1)
                    words[field_index] = 1 if data[pos] else 0
                    pos += 1
                elif op == P.DOP_BYTE:
                    if pos >= n_data:
                        raise underflow(1)
                    raw = data[pos]
                    pos += 1
                    words[field_index] = (
                        raw if raw < 128 else (raw - 256) & _MASK64
                    )
                elif op == P.DOP_CHAR:
                    if pos + 2 > n_data:
                        raise underflow(2)
                    words[field_index] = data[pos] | (data[pos + 1] << 8)
                    pos += 2
                else:  # DOP_SHORT
                    if pos + 2 > n_data:
                        raise underflow(2)
                    raw = data[pos] | (data[pos + 1] << 8)
                    pos += 2
                    words[field_index] = (
                        raw if raw < 32768 else (raw - 65536) & _MASK64
                    )
                index += 1
            return index

        def start_content():
            """Parse one content item: ``(0, value)`` for null/backref/leaf
            objects, ``(1, frame)`` for objects awaiting reference children."""
            nonlocal pos, objects, allocations, instr, reflect_instr, aux
            nonlocal value_fields, reference_fields, graph_bytes
            if pos >= n_data:
                raise underflow(1)
            tag = data[pos]
            pos += 1
            if tag == TC_NULL:
                return 0, None
            if tag == TC_REFERENCE:
                if pos + 4 > n_data:
                    raise underflow(4)
                handle = _U32.unpack_from(data, pos)[0]
                pos += 4
                value = handle_table[handle] if handle < len(handle_table) else None
                if not isinstance(value, HeapObject):
                    raise FormatError("object handle resolves to non-object")
                return 0, value
            if tag not in (TC_OBJECT, TC_ARRAY):
                raise FormatError(f"unexpected tag {tag:#x}")
            klass, plan = read_class_desc()
            objects += 1
            if objects > max_objects:
                limits.check_objects(objects)
            allocations += 1
            aux += plan.de_aux
            if tag == TC_ARRAY:
                if not isinstance(klass, ArrayKlass):
                    raise FormatError("TC_ARRAY with non-array class")
                if pos + 4 > n_data:
                    raise underflow(4)
                length = _U32.unpack_from(data, pos)[0]
                pos += 4
                if length > max_array_length:
                    limits.check_array_length(length)
                obj = heap.allocate(klass, length)
                handle_table.append(obj)
                instr += plan.de_instr + length * plan.de_elem_instr
                graph_bytes += obj.size_bytes
                if plan.is_ref:
                    reference_fields += length
                    if length == 0:
                        return 0, obj
                    return 1, [1, obj, [0] * length, 0]
                value_fields += length
                nbytes = length * plan.element_width
                if nbytes:
                    if pos + nbytes > n_data:
                        raise underflow(nbytes)
                    memory.write(obj.fields_base + 8, data[pos:pos + nbytes])
                    pos += nbytes
                return 0, obj
            if not isinstance(klass, InstanceKlass):
                raise FormatError("TC_OBJECT with array class")
            obj = heap.allocate(klass)
            handle_table.append(obj)
            instr += plan.de_instr
            reflect_instr += plan.de_reflect_instr
            value_fields += plan.n_prim
            reference_fields += plan.n_ref
            graph_bytes += plan.size_bytes
            words = [0] * plan.field_count
            if plan.n_ref == 0:
                run_dec_ops(plan.dec_ops, 0, words)
                if words:
                    memory.write_words(obj.fields_base, words)
                return 0, obj
            return 1, [0, obj, plan.dec_ops, 0, words]

        _UNSET = object()
        kind, payload = start_content()
        if kind == 0:
            if payload is None:
                raise FormatError("stream root must be an object")
            root_obj = payload  # a leaf object: fully parsed inline
            stack: List[list] = []
        else:
            stack = [payload]
            root_obj = payload[1]
        pending = _UNSET
        while stack:
            frame = stack[-1]
            descend = None
            if frame[0] == 0:  # instance frame
                obj, ops, words = frame[1], frame[2], frame[4]
                index = frame[3]
                if pending is not _UNSET:
                    child, pending = pending, _UNSET
                    words[ops[index][1]] = 0 if child is None else child.address
                    index += 1
                op_count = len(ops)
                while True:
                    index = run_dec_ops(ops, index, words)
                    if index >= op_count:
                        break
                    kind, payload = start_content()
                    if kind == 0:
                        words[ops[index][1]] = (
                            0 if payload is None else payload.address
                        )
                        index += 1
                    else:
                        descend = payload
                        break
                frame[3] = index
                if descend is None:
                    if words:
                        memory.write_words(obj.fields_base, words)
                    stack.pop()
                    pending = obj
            else:  # reference-array frame
                obj, words = frame[1], frame[2]
                index = frame[3]
                if pending is not _UNSET:
                    child, pending = pending, _UNSET
                    words[index] = 0 if child is None else child.address
                    index += 1
                count = len(words)
                while index < count:
                    kind, payload = start_content()
                    if kind == 0:
                        words[index] = 0 if payload is None else payload.address
                        index += 1
                    else:
                        descend = payload
                        break
                frame[3] = index
                if descend is None:
                    memory.write_words(obj.fields_base + 8, words)
                    stack.pop()
                    pending = obj
            if descend is not None:
                if len(stack) >= max_depth:
                    limits.check_depth(len(stack) + 1)
                stack.append(descend)

        instr += reflect_instr + n_data * _INSTR_PER_STREAM_BYTE
        profile = WorkProfile()
        profile.instructions = instr
        profile.objects = objects
        profile.allocations = allocations
        profile.value_fields = value_fields
        profile.reference_fields = reference_fields
        profile.aux_random_accesses = aux
        profile.bytes_read = n_data
        profile.bytes_written = graph_bytes
        return DeserializationResult(root_obj, profile)

    # -------------------------------------------------- deserialize (codegen kernel)

    def _deserialize_codegen(
        self, stream: SerializedStream, heap: Heap, limits: DecodeLimits
    ) -> DeserializationResult:
        """Generated-kernel deserialize: identical heap image and profile.

        Instance field segments decode through one combined bounds check
        and one precompiled ``Struct.unpack_from`` per segment instead of
        a per-op loop; shape-constant profile deltas fold per shape at
        the end. Truncation errors keep their type but report the
        generated segment's span rather than the individual field's.
        """
        data = stream.data
        n_data = len(data)
        limits.check_stream_bytes(n_data)
        max_objects = limits.max_objects
        max_array_length = limits.max_array_length
        max_depth = limits.max_depth
        memory = heap.memory
        header_slots = heap.header_slots
        pos = 0

        if n_data < 4:
            offset = 0 if n_data < 2 else 2
            raise TruncatedStreamError(
                offset=offset, needed=2, available=n_data - offset
            )
        if data[:4] != _STREAM_HEADER:
            raise FormatError("bad Java serialization stream header")
        pos = 4

        handle_table: list = []  # Klass and HeapObject entries, handle order

        # klass -> [plan, count, kind, leaf, steps, field_count]
        # kind: 0 = leaf instance, 1 = instance with refs, 2 = array
        cells: Dict[Klass, list] = {}

        objects = 0
        instr_dyn = 0
        value_fields_dyn = 0
        reference_fields_dyn = 0
        graph_bytes_dyn = 0

        def underflow(count: int) -> FormatError:
            return TruncatedStreamError(
                offset=pos, needed=count, available=n_data - pos
            )

        def cell_for(klass: Klass) -> list:
            plan = P.plan_for(self.name, klass, header_slots)
            if klass.is_array:
                cell = [plan, 0, 2, None, None, 0]
            else:
                kernel = CG.decode_kernel_for(self.name, klass, header_slots, plan)
                kind = 0 if plan.n_ref == 0 else 1
                cell = [plan, 0, kind, kernel.leaf, kernel.steps, plan.field_count]
            cells[klass] = cell
            return cell

        def read_class_desc():
            """Parse a classdesc; returns ``(klass, cell)``."""
            nonlocal pos, instr_dyn
            if pos >= n_data:
                raise underflow(1)
            tag = data[pos]
            pos += 1
            if tag == TC_REFERENCE:
                if pos + 4 > n_data:
                    raise underflow(4)
                handle = _U32.unpack_from(data, pos)[0]
                pos += 4
                value = handle_table[handle] if handle < len(handle_table) else None
                if not isinstance(value, Klass):
                    raise FormatError(
                        "class-descriptor handle resolves to non-class"
                    )
                cell = cells.get(value)
                if cell is None:
                    cell = cell_for(value)
                return value, cell
            if tag != TC_CLASSDESC:
                raise FormatError(f"expected class descriptor, got tag {tag:#x}")
            if pos + 2 > n_data:
                raise underflow(2)
            name_length = data[pos] | (data[pos + 1] << 8)
            pos += 2
            if pos + name_length > n_data:
                raise underflow(name_length)
            try:
                name = data[pos:pos + name_length].decode("utf-8")
            except UnicodeDecodeError as error:
                raise FormatError(f"invalid UTF-8 in stream: {error}") from None
            pos += name_length
            try:
                klass = heap.registry.by_name(name)
            except HeapError:
                raise UnknownClassError(
                    repr(name), detail="class name not registered", offset=pos
                ) from None
            cell = cells.get(klass)
            if cell is None:
                cell = cell_for(klass)
            plan = cell[0]
            tail = plan.desc_tail
            if data[pos:pos + len(tail)] == tail:
                pos += len(tail)
            else:
                pos = self._slow_parse_class_desc(data, pos, klass, name)
            instr_dyn += plan.desc_de_instr
            handle_table.append(klass)
            return klass, cell

        def start_content():
            """Parse one content item: ``(0, value)`` for null/backref/leaf
            objects, ``(1, frame)`` for objects awaiting reference children."""
            nonlocal pos, objects, instr_dyn, value_fields_dyn
            nonlocal reference_fields_dyn, graph_bytes_dyn
            if pos >= n_data:
                raise underflow(1)
            tag = data[pos]
            pos += 1
            if tag == TC_NULL:
                return 0, None
            if tag == TC_REFERENCE:
                if pos + 4 > n_data:
                    raise underflow(4)
                handle = _U32.unpack_from(data, pos)[0]
                pos += 4
                value = handle_table[handle] if handle < len(handle_table) else None
                if not isinstance(value, HeapObject):
                    raise FormatError("object handle resolves to non-object")
                return 0, value
            if tag not in (TC_OBJECT, TC_ARRAY):
                raise FormatError(f"unexpected tag {tag:#x}")
            klass, cell = read_class_desc()
            objects += 1
            if objects > max_objects:
                limits.check_objects(objects)
            cell[1] += 1
            kind = cell[2]
            if tag == TC_ARRAY:
                if kind != 2:
                    raise FormatError("TC_ARRAY with non-array class")
                plan = cell[0]
                if pos + 4 > n_data:
                    raise underflow(4)
                length = _U32.unpack_from(data, pos)[0]
                pos += 4
                if length > max_array_length:
                    limits.check_array_length(length)
                obj = heap.allocate(klass, length)
                handle_table.append(obj)
                instr_dyn += length * plan.de_elem_instr
                graph_bytes_dyn += obj.size_bytes
                if plan.is_ref:
                    reference_fields_dyn += length
                    if length == 0:
                        return 0, obj
                    return 1, [1, obj, [0] * length, 0]
                value_fields_dyn += length
                nbytes = length * plan.element_width
                if nbytes:
                    if pos + nbytes > n_data:
                        raise underflow(nbytes)
                    memory.write(obj.fields_base + 8, data[pos:pos + nbytes])
                    pos += nbytes
                return 0, obj
            if kind == 2:
                raise FormatError("TC_OBJECT with array class")
            obj = heap.allocate(klass)
            handle_table.append(obj)
            words = [0] * cell[5]
            if kind == 0:  # leaf instance: one generated straight-line call
                pos = cell[3](data, pos, words)
                if words:
                    memory.write_words(obj.fields_base, words)
                return 0, obj
            return 1, [0, obj, cell[4], 0, words]

        _UNSET = object()
        kind, payload = start_content()
        if kind == 0:
            if payload is None:
                raise FormatError("stream root must be an object")
            root_obj = payload  # a leaf object: fully parsed inline
            stack: List[list] = []
        else:
            stack = [payload]
            root_obj = payload[1]
        pending = _UNSET
        while stack:
            frame = stack[-1]
            descend = None
            if frame[0] == 0:  # instance frame: segments + ref field indices
                obj, steps, words = frame[1], frame[2], frame[4]
                index = frame[3]
                if pending is not _UNSET:
                    child, pending = pending, _UNSET
                    words[steps[index]] = 0 if child is None else child.address
                    index += 1
                step_count = len(steps)
                while index < step_count:
                    step = steps[index]
                    if step.__class__ is int:  # reference field index
                        kind, payload = start_content()
                        if kind == 0:
                            words[step] = 0 if payload is None else payload.address
                            index += 1
                        else:
                            descend = payload
                            break
                    else:
                        pos = step(data, pos, words)
                        index += 1
                frame[3] = index
                if descend is None:
                    if words:
                        memory.write_words(obj.fields_base, words)
                    stack.pop()
                    pending = obj
            else:  # reference-array frame
                obj, words = frame[1], frame[2]
                index = frame[3]
                if pending is not _UNSET:
                    child, pending = pending, _UNSET
                    words[index] = 0 if child is None else child.address
                    index += 1
                count = len(words)
                while index < count:
                    kind, payload = start_content()
                    if kind == 0:
                        words[index] = 0 if payload is None else payload.address
                        index += 1
                    else:
                        descend = payload
                        break
                frame[3] = index
                if descend is None:
                    memory.write_words(obj.fields_base + 8, words)
                    stack.pop()
                    pending = obj
            if descend is not None:
                if len(stack) >= max_depth:
                    limits.check_depth(len(stack) + 1)
                stack.append(descend)

        # Fold shape-constant deltas per cell; allocations track objects
        # one-for-one on this path.
        instr = instr_dyn
        aux = 0
        value_fields = value_fields_dyn
        reference_fields = reference_fields_dyn
        graph_bytes = graph_bytes_dyn
        for cell in cells.values():
            count = cell[1]
            plan = cell[0]
            aux += count * plan.de_aux
            if cell[2] == 2:
                instr += count * plan.de_instr
            else:
                instr += count * (plan.de_instr + plan.de_reflect_instr)
                value_fields += count * plan.n_prim
                reference_fields += count * plan.n_ref
                graph_bytes += count * plan.size_bytes
        instr += n_data * _INSTR_PER_STREAM_BYTE

        profile = WorkProfile()
        profile.instructions = instr
        profile.objects = objects
        profile.allocations = objects
        profile.value_fields = value_fields
        profile.reference_fields = reference_fields
        profile.aux_random_accesses = aux
        profile.bytes_read = n_data
        profile.bytes_written = graph_bytes
        return DeserializationResult(root_obj, profile)
