"""Serialization formats: Java built-in, Kryo, Skyway, and Cereal.

Every serializer implements the same :class:`~repro.formats.base.Serializer`
interface over the simulated JVM heap:

* ``serialize(root)`` walks the object graph in the canonical order and
  produces a :class:`~repro.formats.base.SerializedStream` — real bytes with
  a per-section size breakdown — plus a :class:`~repro.formats.base.WorkProfile`
  that the CPU/accelerator timing models consume.
* ``deserialize(stream, heap)`` reconstructs an equivalent object graph on a
  destination heap.

The four implementations mirror the paper's comparison set (Sections II-IV):
``JavaSerializer`` (type strings + reflection), ``KryoSerializer`` (integer
class numbering + ReflectASM), ``SkywaySerializer`` (raw object copy +
relative addresses), and ``CerealSerializer`` (decoupled value array /
reference array / layout bitmap with object packing).
"""

from repro.formats.base import (
    DeserializationResult,
    SerializationResult,
    SerializedStream,
    Serializer,
    WorkProfile,
)
from repro.formats.registry import ClassRegistration
from repro.formats.javaser import JavaSerializer
from repro.formats.kryo import KryoSerializer
from repro.formats.skyway import SkywaySerializer
from repro.formats.cereal_format import CerealSerializer, CerealStreamSections
from repro.formats.limits import DEFAULT_LIMITS, DecodeLimits
from repro.formats.packing import pack_items, unpack_items
from repro.formats.chunked import (
    ChunkAssembler,
    collect_chunks,
    encode_cursor,
)
from repro.formats.plans import (
    ChunkedEncodeSummary,
    ChunkingBuffer,
    EncodeCursor,
)
from repro.formats.secure import (
    VersionedKryo,
    decode_stats,
    schema_fingerprint,
    secure_deserialize,
    secure_deserialize_chunks,
)
from repro.formats.streams import (
    BoundedChunkQueue,
    ChunkSink,
    ChunkSource,
    CollectingChunkSink,
    frame_chunk,
    unframe_chunk,
)
from repro.formats.verify import graphs_equivalent

__all__ = [
    "Serializer",
    "SerializedStream",
    "SerializationResult",
    "DeserializationResult",
    "WorkProfile",
    "ClassRegistration",
    "DecodeLimits",
    "DEFAULT_LIMITS",
    "JavaSerializer",
    "KryoSerializer",
    "SkywaySerializer",
    "CerealSerializer",
    "CerealStreamSections",
    "VersionedKryo",
    "decode_stats",
    "schema_fingerprint",
    "secure_deserialize",
    "secure_deserialize_chunks",
    "ChunkAssembler",
    "BoundedChunkQueue",
    "ChunkSink",
    "ChunkSource",
    "CollectingChunkSink",
    "ChunkedEncodeSummary",
    "ChunkingBuffer",
    "EncodeCursor",
    "collect_chunks",
    "encode_cursor",
    "frame_chunk",
    "unframe_chunk",
    "pack_items",
    "unpack_items",
    "graphs_equivalent",
]
