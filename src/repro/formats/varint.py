"""Shared LEB128 / zig-zag varint codecs.

One implementation serves every consumer: the section-accounting stream
layer (:mod:`repro.formats.streams`), the compiled-plan kernels
(:mod:`repro.formats.plans`), and the generated codegen kernels
(:mod:`repro.formats.codegen`). Historically ``plans.py`` carried its own
copy of these helpers parallel to ``StreamWriter``/``StreamReader``; both
now route through here so the 10-byte overflow guard, the zig-zag
mapping, and the error taxonomy cannot drift apart.

Encoding is Kryo's little-endian base-128: seven payload bits per byte,
high bit set on every byte except the last. Signed values are zig-zag
mapped into the u64 space first (``0 -> 0, -1 -> 1, 1 -> 2, ...``). A
u64 needs at most ten bytes; a tenth byte whose payload exceeds bit 0
would decode past 2^64, so the decoder rejects it
(:class:`MalformedVarintError`) rather than silently overflowing.
"""

from __future__ import annotations

from typing import Tuple

from repro.common.errors import (
    FormatError,
    MalformedVarintError,
    TruncatedStreamError,
)

_U64_MASK = (1 << 64) - 1


def zigzag_encode(value: int) -> int:
    """Signed i64 -> unsigned zig-zag u64."""
    return ((value << 1) ^ (value >> 63) if value < 0 else value << 1) & _U64_MASK


def zigzag_decode(zigzag: int) -> int:
    """Unsigned zig-zag u64 -> signed i64."""
    value = zigzag >> 1
    if zigzag & 1:
        value = ~value
    return value


def append_varint(out: bytearray, value: int) -> int:
    """Unsigned LEB128 append; returns the encoded length in bytes."""
    if value < 0:
        raise FormatError(f"varint requires non-negative value, got {value}")
    length = 0
    while True:
        byte = value & 0x7F
        value >>= 7
        length += 1
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return length


def append_signed_varint(out: bytearray, value: int) -> int:
    """Zig-zag LEB128 append; returns the encoded length in bytes."""
    zigzag = ((value << 1) ^ (value >> 63) if value < 0 else value << 1) & _U64_MASK
    length = 0
    while True:
        byte = zigzag & 0x7F
        zigzag >>= 7
        length += 1
        if zigzag:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return length


def read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Unsigned LEB128 decode at ``pos``; returns ``(value, new_pos)``.

    Raises :class:`TruncatedStreamError` if the stream ends mid-varint and
    :class:`MalformedVarintError` for encodings longer than 64 bits or a
    final byte that would push the value past 2^64.
    """
    value = 0
    shift = 0
    end = len(data)
    while True:
        if shift > 63:
            raise MalformedVarintError("varint longer than 64 bits")
        if pos >= end:
            raise TruncatedStreamError(offset=pos, needed=1, available=end - pos)
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            # A 10th byte with any bit above bit 0 set would decode to
            # >= 2^64: the encoder never emits it, so reject it rather
            # than silently overflowing the u64 value space.
            if value >= 1 << 64:
                raise MalformedVarintError(
                    f"varint decodes to {value} (>= 2^64); final byte "
                    f"{byte:#04x} at shift {shift} overflows u64"
                )
            return value, pos
        shift += 7


def read_signed_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Zig-zag LEB128 decode at ``pos``; returns ``(value, new_pos)``."""
    value, pos = read_varint(data, pos)
    decoded = value >> 1
    if value & 1:
        decoded = ~decoded
    return decoded, pos
