"""Compiled serialization plans: shape-specialized encode/decode op-lists.

The interpreters in :mod:`repro.formats.javaser`, :mod:`repro.formats.kryo`
and :mod:`repro.formats.cereal_format` re-derive the same facts for *every
object* they touch: which slot holds which field kind, how the field is
encoded on the wire, what the class descriptor bytes look like, how much
modelled work the operation costs. All of that depends only on the
object's *shape* — the klass (plus, for Cereal bitmaps, the array length)
— so it can be computed once and replayed.

A *plan* is that precomputation, compiled per ``(format, klass-shape)``
pair into flat data a tight kernel can execute:

* **encode ops** — ``(op, start, end)`` triples over the object's raw
  memory image. Fixed-width fields whose wire bytes equal their in-memory
  bytes become ``OP_COPY`` slices, and *consecutive contiguous* copies are
  merged into single slices (a ``long``/``double`` run serializes as one
  ``bytes`` copy — the slot-run idea). Only genuinely transforming ops
  remain: f64→f32 re-encode, zig-zag varints, reference recursion points.
* **decode ops** — the inverse list producing 8-byte slot words, with
  verbatim 8-byte fields merged into ``DOP_WORDS`` runs that bulk-unpack.
* **class-descriptor blobs** (Java S/D) — the full ``TC_CLASSDESC`` byte
  string and its per-section size split, emitted with one buffer append
  instead of a field-by-field metadata loop; the decode side compares the
  incoming descriptor tail against the expected bytes in one slice
  comparison and only falls back to the field-by-field parse (for its
  precise error messages and its leniency about field-name strings) when
  the bytes differ.
* **work-profile deltas** — the exact :class:`~repro.formats.base.WorkProfile`
  and reflection-shim cost the interpreter would have accounted for one
  object of this shape, pre-summed so the kernel bumps a handful of local
  integers per object. Plan-path profiles are *identical* to interpreter
  profiles, not approximations — the CPU cost model sees the same work.

Plans live in a process-wide cache keyed on a stable **klass fingerprint**
(name + field signature, or array element kind), so every serializer
instance, service shard, and benchmark in the process shares one compiled
plan per shape. ``plan_cache_stats()`` exposes hit/miss/eviction counters;
the serving layer snapshots them into SLO reports and
``benchmarks/bench_wallclock.py`` gates on warm-cache hit rates.

Byte-identity with the interpreters is enforced by
``tests/test_plans.py`` and the fuzz corpus in
``tests/test_fuzz_roundtrip.py``; the interpreters themselves remain
available as the oracle via ``use_plans=False`` (see
:func:`repro.formats.slow_reference.oracle_serializer`).
"""

from __future__ import annotations

import struct
from hashlib import sha256
from typing import Dict, List, Tuple

from repro.common.errors import FormatError
from repro.formats.varint import (  # noqa: F401  (re-exported: kernel API)
    append_signed_varint,
    append_varint,
    read_signed_varint,
    read_varint,
)
from repro.jvm.klass import ArrayKlass, FieldKind, InstanceKlass, Klass
from repro.jvm.layout_cache import layout_of
from repro.obs.metrics import get_registry

# -- encode opcodes ---------------------------------------------------------------
OP_COPY = 0    # (start, end): image bytes copied verbatim to the stream
OP_FLOAT = 1   # (off, _): f64 slot re-encoded as 4 f32 bytes
OP_REF = 2     # (off, _): reference slot -> recursion point
OP_VARINT = 3  # (off, _): signed i64 slot -> zig-zag varint (Kryo)

# -- decode opcodes ---------------------------------------------------------------
DOP_REF = 0     # reference -> recursion point
DOP_BOOL = 1    # u8 -> 0/1 slot word
DOP_BYTE = 2    # u8 -> sign-extended slot word
DOP_CHAR = 3    # u16 -> slot word
DOP_SHORT = 4   # u16 -> sign-extended slot word
DOP_INT = 5     # u32 -> sign-extended slot word
DOP_FLOAT = 6   # f32 -> f64-bit slot word
DOP_WORDS = 7   # (index, count): run of verbatim 8-byte fields, bulk unpack
DOP_VARINT = 8  # zig-zag varint -> slot word (Kryo INT/LONG)

_U64_MASK = (1 << 64) - 1

_COPY_WIDTHS = {
    FieldKind.BOOLEAN: 1,
    FieldKind.BYTE: 1,
    FieldKind.CHAR: 2,
    FieldKind.SHORT: 2,
    FieldKind.INT: 4,
    FieldKind.LONG: 8,
    FieldKind.DOUBLE: 8,
}

_DECODE_OPS = {
    FieldKind.BOOLEAN: DOP_BOOL,
    FieldKind.BYTE: DOP_BYTE,
    FieldKind.CHAR: DOP_CHAR,
    FieldKind.SHORT: DOP_SHORT,
    FieldKind.INT: DOP_INT,
    FieldKind.FLOAT: DOP_FLOAT,
}


# The varint codecs (``append_varint`` / ``read_varint`` and zig-zag
# variants) now live in :mod:`repro.formats.varint` and are re-exported
# above for the Kryo kernels that import them from here.


# -- plan containers ---------------------------------------------------------------


class InstancePlan:
    """Compiled shape facts for one instance klass under one format."""

    __slots__ = (
        "klass",
        "size_bytes",
        "field_count",
        "enc_ops",
        "enc_data_bytes",
        "dec_ops",
        "n_ref",
        "n_prim",
        "desc_blob",
        "desc_meta_bytes",
        "desc_type_bytes",
        "desc_tail",
        "ser_instr",
        "ser_aux",
        "ser_dep",
        "ser_reflect_instr",
        "desc_ser_instr",
        "de_instr",
        "de_aux",
        "de_reflect_instr",
        "desc_de_instr",
    )


class ArrayPlan:
    """Compiled shape facts for an array klass (length-independent)."""

    __slots__ = (
        "klass",
        "element_kind",
        "element_width",
        "is_ref",
        "copy_elements",      # wire bytes == element storage bytes
        "varint_code",        # struct code for Kryo INT/LONG element loads
        "desc_blob",
        "desc_meta_bytes",
        "desc_type_bytes",
        "desc_tail",
        "ser_instr",          # per object
        "ser_aux",
        "ser_dep",
        "ser_elem_instr",     # per element
        "desc_ser_instr",
        "de_instr",
        "de_aux",
        "de_elem_instr",
        "desc_de_instr",
    )


class CerealPlan:
    """Value/reference word indices + bitmap for one Cereal object shape."""

    __slots__ = (
        "klass",
        "total_slots",
        "value_word_indices",   # absolute word indices of non-ref field slots
        "ref_word_indices",     # absolute word indices of reference slots
        "bitmap_word",
        "bitmap_width",
        "n_ref",
        "n_value",
        "instr",                # per object serialize instructions
    )


# -- the process-wide plan cache ----------------------------------------------------

# Bounded like the layout cache: plans are regenerable, the cap only guards
# against workloads that produce unboundedly many distinct array lengths
# (which only the Cereal plans key on).
_MAX_ENTRIES = 1 << 16
_PLANS: Dict[Tuple, object] = {}
_FINGERPRINTS: Dict[Klass, str] = {}
_BITMAP_REFS: Dict[Tuple[int, int], Tuple[int, ...]] = {}

# Recorded in the process-wide metrics registry as ``plan_cache.*``;
# ``plan_cache_stats()`` below is a thin view over these handles.
_HITS = get_registry().counter("plan_cache.hits")
_MISSES = get_registry().counter("plan_cache.misses")
_EVICTIONS = get_registry().counter("plan_cache.evictions")
_ENTRIES = get_registry().gauge("plan_cache.entries")


def klass_fingerprint(klass: Klass) -> str:
    """Stable shape identity: name plus field signature / element kind.

    Two klass objects with the same fingerprint serialize identically in
    every format, so their plans are interchangeable — this is what lets
    the cache be process-wide across serializer instances and registries.
    """
    fingerprint = _FINGERPRINTS.get(klass)
    if fingerprint is None:
        if isinstance(klass, ArrayKlass):
            identity = ("array", klass.name, klass.element_kind.value)
        else:
            assert isinstance(klass, InstanceKlass)
            identity = (
                "instance",
                klass.name,
                tuple((d.name, d.kind.value) for d in klass.fields),
            )
        fingerprint = sha256(repr(identity).encode("utf-8")).hexdigest()[:16]
        _FINGERPRINTS[klass] = fingerprint
    return fingerprint


def plan_for(format_name: str, klass: Klass, header_slots: int, length: int = 0):
    """The memoized plan for ``(format, klass shape, header geometry)``.

    ``length`` only differentiates Cereal plans (their layout bitmap is
    per-length); the Java/Kryo array plans are length-independent.
    """
    if klass.is_array and format_name != "cereal":
        length = -1
    key = (format_name, klass_fingerprint(klass), header_slots, length)
    plan = _PLANS.get(key)
    if plan is not None:
        _HITS.value += 1  # direct bump: this is the per-object hot path
        return plan
    _MISSES.inc()
    if format_name == "java-builtin":
        plan = _compile_java(klass, header_slots)
    elif format_name == "kryo":
        plan = _compile_kryo(klass, header_slots)
    elif format_name == "cereal":
        plan = _compile_cereal(klass, header_slots, max(length, 0))
    else:
        raise FormatError(f"no plan compiler for format {format_name!r}")
    if len(_PLANS) >= _MAX_ENTRIES:
        _PLANS.clear()
        _EVICTIONS.inc()
    _PLANS[key] = plan
    _ENTRIES.set(len(_PLANS) + len(_BITMAP_REFS))
    return plan


def bitmap_reference_slots(bitmap_word: int, bitmap_width: int) -> Tuple[int, ...]:
    """Memoized MSB-first set-bit positions of a layout bitmap word.

    The Cereal decode loop classifies every slot of every object against
    the bitmap; repeated shapes reuse the classification instead of
    re-shifting per slot.
    """
    key = (bitmap_word, bitmap_width)
    slots = _BITMAP_REFS.get(key)
    if slots is not None:
        _HITS.value += 1  # direct bump: this is the per-object hot path
        return slots
    _MISSES.inc()
    slots = tuple(
        slot
        for slot in range(bitmap_width)
        if (bitmap_word >> (bitmap_width - 1 - slot)) & 1
    )
    if len(_BITMAP_REFS) >= _MAX_ENTRIES:
        _BITMAP_REFS.clear()
        _EVICTIONS.inc()
    _BITMAP_REFS[key] = slots
    _ENTRIES.set(len(_PLANS) + len(_BITMAP_REFS))
    return slots


def plan_cache_stats() -> Dict[str, object]:
    """Hit/miss/eviction counters plus hit rate for reports and gates.

    A thin view over the ``plan_cache.*`` metrics in the process-wide
    registry (:mod:`repro.obs.metrics`)."""
    hits, misses = _HITS.value, _MISSES.value
    probes = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "evictions": _EVICTIONS.value,
        "entries": len(_PLANS) + len(_BITMAP_REFS),
        "hit_rate": round(hits / probes, 4) if probes else 0.0,
    }


def reset_plan_cache() -> None:
    """Drop compiled plans and zero the counters (tests, benchmarks)."""
    _PLANS.clear()
    _BITMAP_REFS.clear()
    _FINGERPRINTS.clear()
    _HITS.reset()
    _MISSES.reset()
    _EVICTIONS.reset()
    _ENTRIES.reset()


# -- shared compile helpers ---------------------------------------------------------


def _merge_copy_runs(ops: List[Tuple[int, int, int]]) -> Tuple[Tuple[int, int, int], ...]:
    """Fuse adjacent OP_COPY ops whose byte ranges are contiguous."""
    merged: List[Tuple[int, int, int]] = []
    for op in ops:
        if (
            merged
            and op[0] == OP_COPY
            and merged[-1][0] == OP_COPY
            and merged[-1][2] == op[1]
        ):
            merged[-1] = (OP_COPY, merged[-1][1], op[2])
        else:
            merged.append(op)
    return tuple(merged)


def _merge_word_runs(ops: List[Tuple[int, int, int]]) -> Tuple[Tuple[int, int, int], ...]:
    """Fuse adjacent DOP_WORDS ops over consecutive field indices."""
    merged: List[Tuple[int, int, int]] = []
    for op in ops:
        if (
            merged
            and op[0] == DOP_WORDS
            and merged[-1][0] == DOP_WORDS
            and merged[-1][1] + merged[-1][2] == op[1]
        ):
            merged[-1] = (DOP_WORDS, merged[-1][1], merged[-1][2] + op[2])
        else:
            merged.append(op)
    return tuple(merged)


def _reflection_lookup_cost(fields, field_count: int) -> Tuple[int, int, int]:
    """(method_invocations, string_comparisons, characters_compared) for one
    full named-field pass, mirroring ``JavaReflection._lookup`` exactly."""
    invocations = comparisons = characters = 0
    for index in range(field_count):
        name = fields[index].name
        invocations += 1
        for scan in range(index + 1):
            comparisons += 1
            other = fields[scan].name
            common = 0
            for a, b in zip(other, name):
                common += 1
                if a != b:
                    break
            characters += max(1, common)
            if other == name:
                break
    return invocations, comparisons, characters


def _java_reflection_instr(klass: InstanceKlass) -> int:
    """Estimated instructions for one reflective get/set pass over ``klass``.

    Reads and writes cost the same (3 per access), so one number serves
    both the serialize and deserialize sides.
    """
    invocations, comparisons, characters = _reflection_lookup_cost(
        klass.fields, len(klass.fields)
    )
    accesses = len(klass.fields) * 3  # field_reads or field_writes, both 3
    return invocations * 40 + comparisons * 6 + characters * 2 + accesses


def _java_desc_blob(klass: Klass) -> Tuple[bytes, int, int, bytes]:
    """The TC_CLASSDESC byte string for ``klass`` plus its section split.

    Returns ``(blob, meta_bytes, type_bytes, tail)`` where ``tail`` is the
    descriptor after the tag byte and class-name UTF (what the decoder
    compares against after it has read the name).
    """
    from repro.formats import javaser as J

    blob = bytearray()
    meta_bytes = 0
    type_bytes = 0
    blob.append(J.TC_CLASSDESC)
    meta_bytes += 1
    name_utf = klass.name.encode("utf-8")
    blob += struct.pack("<H", len(name_utf)) + name_utf
    type_bytes += 2 + len(name_utf)
    blob += struct.pack("<Q", J.serial_version_uid(klass))
    meta_bytes += 8
    blob.append(J.SC_SERIALIZABLE)
    meta_bytes += 1
    if isinstance(klass, InstanceKlass):
        blob += struct.pack("<H", len(klass.fields))
        meta_bytes += 2
        for descriptor in klass.fields:
            blob.append(J._TYPE_CODES[descriptor.kind])
            meta_bytes += 1
            field_utf = descriptor.name.encode("utf-8")
            blob += struct.pack("<H", len(field_utf)) + field_utf
            type_bytes += 2 + len(field_utf)
            if descriptor.kind.is_reference:
                type_utf = J._REFERENCE_TYPE_STRING.encode("utf-8")
                blob += struct.pack("<H", len(type_utf)) + type_utf
                type_bytes += 2 + len(type_utf)
    else:
        assert isinstance(klass, ArrayKlass)
        blob += struct.pack("<H", 0)
        meta_bytes += 2
        blob.append(J._TYPE_CODES[klass.element_kind])
        meta_bytes += 1
    tail = bytes(blob[1 + 2 + len(name_utf):])
    return bytes(blob), meta_bytes, type_bytes, tail


def _field_ops(
    klass: InstanceKlass, header_bytes: int, varint_kinds: Tuple[FieldKind, ...]
) -> Tuple[Tuple, Tuple, int, int]:
    """(enc_ops, dec_ops, static_data_bytes, n_ref) for an instance klass."""
    enc: List[Tuple[int, int, int]] = []
    dec: List[Tuple[int, int, int]] = []
    data_bytes = 0
    n_ref = 0
    for index, descriptor in enumerate(klass.fields):
        offset = header_bytes + index * 8
        kind = descriptor.kind
        if kind is FieldKind.REFERENCE:
            enc.append((OP_REF, offset, 0))
            dec.append((DOP_REF, index, 0))
            n_ref += 1
        elif kind in varint_kinds:
            enc.append((OP_VARINT, offset, 0))
            dec.append((DOP_VARINT, index, 0))
        elif kind is FieldKind.FLOAT:
            enc.append((OP_FLOAT, offset, 0))
            dec.append((DOP_FLOAT, index, 0))
            data_bytes += 4
        elif kind in (FieldKind.LONG, FieldKind.DOUBLE):
            enc.append((OP_COPY, offset, offset + 8))
            dec.append((DOP_WORDS, index, 1))
            data_bytes += 8
        else:
            width = _COPY_WIDTHS[kind]
            enc.append((OP_COPY, offset, offset + width))
            dec.append((_DECODE_OPS[kind], index, 0))
            data_bytes += width
    return _merge_copy_runs(enc), _merge_word_runs(dec), data_bytes, n_ref


# -- format compilers ----------------------------------------------------------------


def _compile_java(klass: Klass, header_slots: int):
    from repro.formats import javaser as J

    header_bytes = header_slots * 8
    blob, meta_bytes, type_bytes, tail = _java_desc_blob(klass)
    if isinstance(klass, ArrayKlass):
        plan = ArrayPlan()
        plan.klass = klass
        plan.element_kind = klass.element_kind
        plan.element_width = klass.element_width
        plan.is_ref = klass.element_kind.is_reference
        plan.copy_elements = not plan.is_ref
        plan.varint_code = ""
        plan.desc_blob = blob
        plan.desc_meta_bytes = meta_bytes
        plan.desc_type_bytes = type_bytes
        plan.desc_tail = tail
        plan.ser_instr = J._INSTR_PER_OBJECT
        plan.ser_aux = J._AUX_ACCESSES_PER_OBJECT_SER
        plan.ser_dep = 2
        plan.ser_elem_instr = (
            J._INSTR_PER_REFERENCE if plan.is_ref else J._INSTR_PER_PRIMITIVE
        )
        plan.desc_ser_instr = J._INSTR_PER_CLASSDESC
        plan.de_instr = J._INSTR_PER_OBJECT_DESER + J._INSTR_PER_ALLOC
        plan.de_aux = J._AUX_ACCESSES_PER_OBJECT_DESER
        plan.de_elem_instr = (
            J._INSTR_PER_FIELD_DESER if plan.is_ref else J._INSTR_PER_PRIMITIVE // 4
        )
        plan.desc_de_instr = J._INSTR_PER_CLASSDESC + len(klass.name) * 2
        return plan

    assert isinstance(klass, InstanceKlass)
    enc_ops, dec_ops, data_bytes, n_ref = _field_ops(klass, header_bytes, ())
    field_count = len(klass.fields)
    n_prim = field_count - n_ref
    plan = InstancePlan()
    plan.klass = klass
    plan.size_bytes = header_bytes + field_count * 8
    plan.field_count = field_count
    plan.enc_ops = enc_ops
    plan.enc_data_bytes = data_bytes
    plan.dec_ops = dec_ops
    plan.n_ref = n_ref
    plan.n_prim = n_prim
    plan.desc_blob = blob
    plan.desc_meta_bytes = meta_bytes
    plan.desc_type_bytes = type_bytes
    plan.desc_tail = tail
    plan.ser_instr = (
        J._INSTR_PER_OBJECT
        + n_prim * J._INSTR_PER_PRIMITIVE
        + n_ref * J._INSTR_PER_REFERENCE
    )
    plan.ser_aux = J._AUX_ACCESSES_PER_OBJECT_SER
    plan.ser_dep = 2 + n_ref
    plan.ser_reflect_instr = _java_reflection_instr(klass)
    plan.desc_ser_instr = J._INSTR_PER_CLASSDESC
    plan.de_instr = (
        J._INSTR_PER_OBJECT_DESER
        + J._INSTR_PER_ALLOC
        + field_count * J._INSTR_PER_FIELD_DESER
    )
    plan.de_aux = J._AUX_ACCESSES_PER_OBJECT_DESER
    plan.de_reflect_instr = _java_reflection_instr(klass)
    plan.desc_de_instr = J._INSTR_PER_CLASSDESC + len(klass.name) * 2
    return plan


def _compile_kryo(klass: Klass, header_slots: int):
    from repro.formats import kryo as K

    header_bytes = header_slots * 8
    if isinstance(klass, ArrayKlass):
        plan = ArrayPlan()
        plan.klass = klass
        plan.element_kind = klass.element_kind
        plan.element_width = klass.element_width
        plan.is_ref = klass.element_kind.is_reference
        plan.copy_elements = not plan.is_ref and klass.element_kind not in (
            FieldKind.INT,
            FieldKind.LONG,
        )
        plan.varint_code = (
            "i" if klass.element_kind is FieldKind.INT else
            "q" if klass.element_kind is FieldKind.LONG else ""
        )
        plan.desc_blob = b""
        plan.desc_meta_bytes = 0
        plan.desc_type_bytes = 0
        plan.desc_tail = b""
        plan.ser_instr = K._INSTR_PER_OBJECT
        plan.ser_aux = K._AUX_ACCESSES_PER_OBJECT_SER
        plan.ser_dep = 2
        plan.ser_elem_instr = (
            K._INSTR_PER_REFERENCE if plan.is_ref else K._INSTR_PER_PRIMITIVE
        )
        plan.desc_ser_instr = 0
        plan.de_instr = K._INSTR_PER_OBJECT_DESER + K._INSTR_PER_ALLOC
        plan.de_aux = K._AUX_ACCESSES_PER_OBJECT_DESER
        plan.de_elem_instr = K._INSTR_PER_FIELD_DESER
        plan.desc_de_instr = 0
        return plan

    assert isinstance(klass, InstanceKlass)
    enc_ops, dec_ops, data_bytes, n_ref = _field_ops(
        klass, header_bytes, (FieldKind.INT, FieldKind.LONG)
    )
    field_count = len(klass.fields)
    n_prim = field_count - n_ref
    plan = InstancePlan()
    plan.klass = klass
    plan.size_bytes = header_bytes + field_count * 8
    plan.field_count = field_count
    plan.enc_ops = enc_ops
    plan.enc_data_bytes = data_bytes
    plan.dec_ops = dec_ops
    plan.n_ref = n_ref
    plan.n_prim = n_prim
    plan.desc_blob = b""
    plan.desc_meta_bytes = 0
    plan.desc_type_bytes = 0
    plan.desc_tail = b""
    plan.ser_instr = (
        K._INSTR_PER_OBJECT
        + n_prim * K._INSTR_PER_PRIMITIVE
        + n_ref * K._INSTR_PER_REFERENCE
    )
    plan.ser_aux = K._AUX_ACCESSES_PER_OBJECT_SER
    plan.ser_dep = 2 + n_ref
    # ReflectASM: one indexed access (4) + one field read/write (3) per field.
    plan.ser_reflect_instr = field_count * 7
    plan.desc_ser_instr = 0
    plan.de_instr = (
        K._INSTR_PER_OBJECT_DESER
        + K._INSTR_PER_ALLOC
        + field_count * K._INSTR_PER_FIELD_DESER
    )
    plan.de_aux = K._AUX_ACCESSES_PER_OBJECT_DESER
    plan.de_reflect_instr = field_count * 7
    plan.desc_de_instr = 0
    return plan


def _compile_cereal(klass: Klass, header_slots: int, length: int):
    from repro.formats import cereal_format as C

    layout = layout_of(klass, header_slots, length)
    reference_set = layout.reference_slot_set
    plan = CerealPlan()
    plan.klass = klass
    plan.total_slots = layout.total_slots
    plan.ref_word_indices = tuple(
        header_slots + slot for slot in layout.reference_slots
    )
    plan.value_word_indices = tuple(
        header_slots + slot
        for slot in range(layout.field_slots)
        if slot not in reference_set
    )
    plan.bitmap_word = layout.bitmap_word
    plan.bitmap_width = layout.bitmap_width
    plan.n_ref = len(plan.ref_word_indices)
    plan.n_value = len(plan.value_word_indices)
    plan.instr = C._INSTR_PER_OBJECT + C._INSTR_PER_SLOT * layout.total_slots
    return plan


# -- chunked execution ---------------------------------------------------------------
#
# The plan/codegen kernels above are append-only writers: every byte they
# produce goes through ``out += ...`` / ``out.append(...)`` and the only
# read-back they perform is ``len(out)`` (to measure what a step wrote).
# That contract is what makes the executor chunkable: a
# :class:`ChunkingBuffer` honors exactly that interface while carving the
# output into fixed-size arenas from a
# :class:`~repro.common.bufpool.ChunkArenaPool`, and an
# :class:`EncodeCursor` drives a generator-based plan walk that suspends
# at chunk boundaries — the walk's explicit frame stack *is* the resume
# state, so continuing never re-visits an already-encoded object.


class ChunkingBuffer:
    """An append-only output buffer that carves fixed-size chunk arenas.

    Drop-in for the ``bytearray`` the plan/codegen kernels write into:
    supports ``append``/``extend``/``+=`` and ``len()`` — where ``len()``
    reports the *logical* stream position (total bytes ever written), so
    kernels that measure a step via ``base = len(out) ... len(out) - base``
    see exactly the numbers they would against a flat buffer.

    Writes land in the current arena; the instant it reaches
    ``chunk_bytes`` it is sealed onto the ready list and a fresh arena is
    acquired from the pool. One oversized ``extend`` seals as many full
    chunks as it spans — every sealed chunk is *exactly* ``chunk_bytes``
    long, so chunk boundaries are deterministic functions of the byte
    stream alone (resume-determinism relies on this).
    """

    __slots__ = ("chunk_bytes", "_pool", "_block", "_current", "_ready", "_total")

    def __init__(self, chunk_bytes: int, pool=None, block: bool = False):
        if chunk_bytes <= 0:
            raise FormatError(
                f"chunk_bytes must be positive, got {chunk_bytes}"
            )
        if pool is None:
            from repro.common.bufpool import GLOBAL_CHUNK_POOL

            pool = GLOBAL_CHUNK_POOL
        self.chunk_bytes = chunk_bytes
        self._pool = pool
        self._block = block
        self._current = pool.acquire(block=block)
        self._ready: List[bytearray] = []
        self._total = 0

    def __len__(self) -> int:
        return self._total

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    def append(self, byte: int) -> None:
        self._total += 1
        cur = self._current
        cur.append(byte)
        if len(cur) >= self.chunk_bytes:
            self._seal()

    def extend(self, data) -> None:
        n = len(data)
        self._total += n
        cur = self._current
        room = self.chunk_bytes - len(cur)
        if n < room:
            cur += data
            return
        offset = 0
        while n - offset >= room:
            cur += data[offset:offset + room]
            offset += room
            self._seal()
            cur = self._current
            room = self.chunk_bytes
        if offset < n:
            cur += data[offset:]

    def __iadd__(self, data) -> "ChunkingBuffer":
        self.extend(data)
        return self

    def _seal(self) -> None:
        self._ready.append(self._current)
        self._current = self._pool.acquire(block=self._block)

    def pop_ready(self):
        """The oldest sealed chunk arena, or ``None``."""
        if self._ready:
            return self._ready.pop(0)
        return None

    def flush_tail(self) -> None:
        """Seal the final partial chunk (end of stream). An empty tail —
        the stream length was an exact multiple of ``chunk_bytes`` — is
        released straight back to the pool, never emitted."""
        cur = self._current
        if cur is None:
            return
        self._current = None
        if len(cur):
            self._ready.append(cur)
        else:
            self._pool.release(cur)

    def recycle(self, arena) -> None:
        """Return a consumed chunk arena to the pool."""
        self._pool.release(arena)

    def abandon(self) -> None:
        """Release every arena still held (error/teardown path)."""
        if self._current is not None:
            self._pool.release(self._current)
            self._current = None
        while self._ready:
            self._pool.release(self._ready.pop())


class ChunkedEncodeSummary:
    """What a fully-drained :class:`EncodeCursor` produced, minus the
    bytes themselves (those went through the sink chunk by chunk)."""

    __slots__ = (
        "format_name",
        "total_bytes",
        "chunk_count",
        "sections",
        "profile",
        "object_count",
        "graph_bytes",
    )

    def __init__(self, format_name, total_bytes, chunk_count, sections,
                 profile, object_count, graph_bytes):
        self.format_name = format_name
        self.total_bytes = total_bytes
        self.chunk_count = chunk_count
        self.sections = sections
        self.profile = profile
        self.object_count = object_count
        self.graph_bytes = graph_bytes


class EncodeCursor:
    """A resumable handle over one chunked encode.

    Wraps a *walk* — a generator that encodes the object graph into a
    :class:`ChunkingBuffer`, yielding at every safe suspension point (its
    local frame stack carries all traversal state) and returning a
    :class:`ChunkedEncodeSummary`. ``next_chunk()`` advances the walk
    only as far as the next sealed chunk, so the producer never runs
    ahead of its consumer by more than the pool population: backpressure
    reaches the plan executor itself.

    The caller owns each returned arena until it hands it back via
    ``recycle()`` — the pull loop is::

        while (chunk := cursor.next_chunk()) is not None:
            consume(chunk)          # copy/frame/transmit
            cursor.recycle(chunk)   # arena returns to the pool

    ``summary`` is available once ``next_chunk()`` has returned ``None``.
    """

    def __init__(self, walk, buffer: ChunkingBuffer):
        self._walk = walk
        self._buffer = buffer
        self._exhausted = False
        self.summary = None
        self.chunks_emitted = 0

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    def next_chunk(self):
        """The next sealed chunk arena, or ``None`` at end of stream."""
        buf = self._buffer
        while not buf.ready_count and not self._exhausted:
            try:
                next(self._walk)
            except StopIteration as stop:
                self._exhausted = True
                self.summary = stop.value
                buf.flush_tail()
        chunk = buf.pop_ready()
        if chunk is None:
            return None
        self.chunks_emitted += 1
        return chunk

    def recycle(self, arena) -> None:
        self._buffer.recycle(arena)

    def close(self) -> None:
        """Abort a partially-drained cursor, releasing held arenas."""
        if not self._exhausted:
            self._walk.close()
            self._exhausted = True
        self._buffer.abandon()
