"""Seeded adversarial-stream corpus for the hardened decode path.

The corpus mixes two kinds of hostility:

* **mutations** of valid streams — truncations (always rejectable),
  random bit-flips and pure garbage (must never *crash* or corrupt the
  heap, but a flip can land in a don't-care byte and still decode);
* **crafted attacks** that exploit format semantics — out-of-range class
  IDs, oversized varints, pathological array lengths, forward back-
  references, nesting/cycle bombs, and header fields that lie about the
  image size.

Everything is derived from one integer seed via :class:`random.Random`,
so a corpus is a reproducible regression artifact: the golden seeds
checked into ``tests/test_adversarial_decode.py`` replay byte-for-byte.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.formats.base import SerializedStream, Serializer
from repro.formats.cereal_format import CerealSerializer
from repro.formats.javaser import (
    JavaSerializer,
    MAGIC,
    SC_SERIALIZABLE,
    TC_ARRAY,
    TC_CLASSDESC,
    TC_OBJECT,
    VERSION,
    serial_version_uid,
)
from repro.formats.kryo import (
    KryoSerializer,
    MARK_ARRAY,
    MARK_BACKREF,
    MARK_OBJECT,
)
from repro.formats.registry import ClassRegistration
from repro.formats.secure import VersionedKryo
from repro.formats.skyway import SkywaySerializer
from repro.formats.streams import StreamWriter
from repro.jvm.heap import Heap
from repro.jvm.klass import FieldKind, KlassRegistry
from repro.workloads.micro import build_microbench, register_micro_klasses

DEFAULT_SEED = 0xC0FFEE

FORMAT_NAMES = ("java-builtin", "kryo", "skyway", "cereal", "kryo-versioned")


@dataclass
class AdversarialSample:
    """One malicious (or possibly-malicious) stream to feed a decoder."""

    name: str  # unique, e.g. "kryo/truncate/3"
    format_name: str
    kind: str  # truncate | bitflip | garbage | <crafted attack name>
    data: bytes
    # True: the stream is provably invalid and MUST raise a typed error.
    # False (bit-flips, garbage): decode may succeed by luck, but must
    # never crash untyped and must leave the heap untouched on failure.
    must_reject: bool


@dataclass
class AdversarialCorpus:
    """The generated samples plus everything needed to decode them."""

    seed: int
    samples: List[AdversarialSample]
    registry: KlassRegistry  # klass registry for reader heaps
    registration: ClassRegistration  # shared by kryo/skyway/cereal

    def serializer_for(self, format_name: str) -> Serializer:
        return make_serializer(format_name, self.registration)

    def fresh_heap(self) -> Heap:
        return Heap(registry=self.registry)

    def by_format(self) -> Dict[str, List[AdversarialSample]]:
        out: Dict[str, List[AdversarialSample]] = {}
        for sample in self.samples:
            out.setdefault(sample.format_name, []).append(sample)
        return out


def make_serializer(
    format_name: str, registration: ClassRegistration
) -> Serializer:
    if format_name == "java-builtin":
        return JavaSerializer()
    if format_name == "kryo":
        return KryoSerializer(registration=registration)
    if format_name == "skyway":
        return SkywaySerializer(registration=registration)
    if format_name == "cereal":
        return CerealSerializer(registration=registration)
    if format_name == "kryo-versioned":
        return VersionedKryo(registration=registration)
    raise ValueError(f"unknown format {format_name!r}")


def as_stream(format_name: str, data: bytes) -> SerializedStream:
    """Wrap raw attack bytes for a decoder (sections intentionally empty)."""
    return SerializedStream(format_name=format_name, data=data, sections={})


def _mutations(
    rng: random.Random,
    format_name: str,
    data: bytes,
    truncations: int,
    bitflips: int,
    garbage: int,
) -> List[AdversarialSample]:
    samples: List[AdversarialSample] = []
    for index in range(truncations):
        cut = rng.randrange(1, len(data))
        samples.append(
            AdversarialSample(
                name=f"{format_name}/truncate/{index}",
                format_name=format_name,
                kind="truncate",
                data=data[:cut],
                must_reject=True,
            )
        )
    for index in range(bitflips):
        position = rng.randrange(len(data))
        bit = 1 << rng.randrange(8)
        flipped = bytearray(data)
        flipped[position] ^= bit
        samples.append(
            AdversarialSample(
                name=f"{format_name}/bitflip/{index}",
                format_name=format_name,
                kind="bitflip",
                data=bytes(flipped),
                must_reject=False,
            )
        )
    for index in range(garbage):
        length = rng.randrange(1, 256)
        samples.append(
            AdversarialSample(
                name=f"{format_name}/garbage/{index}",
                format_name=format_name,
                kind="garbage",
                data=rng.randbytes(length)
                if hasattr(rng, "randbytes")
                else bytes(rng.randrange(256) for _ in range(length)),
                must_reject=False,
            )
        )
    return samples


def _varint(value: int) -> bytes:
    writer = StreamWriter()
    writer.write_varint(value, "v")
    return writer.getvalue()


def _kryo_primitive_bytes(kind: FieldKind) -> int:
    """Bytes a zero value of ``kind`` occupies in the Kryo wire format."""
    if kind in (FieldKind.BOOLEAN, FieldKind.BYTE):
        return 1
    if kind in (FieldKind.CHAR, FieldKind.SHORT):
        return 2
    if kind in (FieldKind.INT, FieldKind.LONG):
        return 1  # zig-zag varint: zero is one byte
    if kind is FieldKind.FLOAT:
        return 4
    if kind is FieldKind.DOUBLE:
        return 8
    raise ValueError(f"not a primitive kind: {kind}")


def _kryo_attacks(registration: ClassRegistration) -> List[AdversarialSample]:
    long_array_id = None
    instance_id = None
    ref_field_id = None
    for class_id, klass in enumerate(registration):
        if klass.is_array and klass.element_kind is FieldKind.LONG:
            long_array_id = class_id
        if not klass.is_array:
            if instance_id is None:
                instance_id = class_id
            if ref_field_id is None and any(
                d.kind.is_reference for d in klass.fields
            ):
                ref_field_id = class_id

    samples = [
        AdversarialSample(
            name="kryo/class_id_oob/0",
            format_name="kryo",
            kind="class_id_oob",
            data=bytes([MARK_OBJECT]) + _varint(10**6),
            must_reject=True,
        ),
        AdversarialSample(
            name="kryo/oversized_varint/0",
            format_name="kryo",
            kind="oversized_varint",
            data=bytes([MARK_OBJECT]) + b"\xff" * 11,
            must_reject=True,
        ),
        AdversarialSample(
            # A 10th varint byte above 0x01 decodes past 2^64.
            name="kryo/oversized_varint/1",
            format_name="kryo",
            kind="oversized_varint",
            data=bytes([MARK_OBJECT]) + b"\x80" * 9 + b"\x7f",
            must_reject=True,
        ),
    ]
    if long_array_id is not None:
        samples.append(
            AdversarialSample(
                # 2^40 longs from a 10-byte stream.
                name="kryo/array_bomb/0",
                format_name="kryo",
                kind="array_bomb",
                data=bytes([MARK_ARRAY])
                + _varint(long_array_id)
                + _varint(1 << 40),
                must_reject=True,
            )
        )
    if instance_id is not None:
        samples.append(
            AdversarialSample(
                name="kryo/forward_backref/0",
                format_name="kryo",
                kind="forward_backref",
                data=bytes([MARK_BACKREF]) + _varint(7),
                must_reject=True,
            )
        )
    if ref_field_id is not None:
        # Nesting bomb: a chain of objects each opening the next object in
        # its first reference field, deeper than any sane decode stack.
        # The repeating unit is MARK_OBJECT + class ID + zero bytes for
        # every primitive field before that reference, so the child marker
        # lands exactly where the decoder expects a reference.
        klass = registration.klass_of(ref_field_id)
        unit = bytearray([MARK_OBJECT])
        unit += _varint(ref_field_id)
        for descriptor in klass.fields:
            if descriptor.kind.is_reference:
                break
            unit += b"\x00" * _kryo_primitive_bytes(descriptor.kind)
        depth = 6000
        samples.append(
            AdversarialSample(
                name="kryo/cycle_bomb/0",
                format_name="kryo",
                kind="cycle_bomb",
                data=bytes(unit) * depth,
                must_reject=True,
            )
        )
    return samples


def _javaser_attacks() -> List[AdversarialSample]:
    prelude = struct.pack("<HH", MAGIC, VERSION)

    def utf(text: str) -> bytes:
        encoded = text.encode("utf-8")
        return struct.pack("<H", len(encoded)) + encoded

    unknown = (
        prelude
        + bytes([TC_OBJECT, TC_CLASSDESC])
        + utf("NoSuchClass")
        + b"\x00" * 9  # uid + flags, read before the name lookup fails
    )

    # A real long[] class descriptor followed by an absurd length claim.
    from repro.jvm.klass import ArrayKlass

    long_array = ArrayKlass(FieldKind.LONG)
    uid = serial_version_uid(long_array)
    array_bomb = (
        prelude
        + bytes([TC_ARRAY, TC_CLASSDESC])
        + utf(long_array.name)
        + struct.pack("<Q", uid)
        + bytes([SC_SERIALIZABLE])
        + struct.pack("<H", 0)
        + bytes([ord("J")])
        + struct.pack("<I", 0xFFFF_FFF0)
    )
    return [
        AdversarialSample(
            name="java-builtin/unknown_class/0",
            format_name="java-builtin",
            kind="unknown_class",
            data=unknown,
            must_reject=True,
        ),
        AdversarialSample(
            name="java-builtin/array_bomb/0",
            format_name="java-builtin",
            kind="array_bomb",
            data=array_bomb,
            must_reject=True,
        ),
        AdversarialSample(
            name="java-builtin/bad_magic/0",
            format_name="java-builtin",
            kind="bad_magic",
            data=b"\x00\x00\x00\x00" + b"\x70",
            must_reject=True,
        ),
    ]


def _header_lie_attacks(
    format_name: str, data: bytes
) -> List[AdversarialSample]:
    """Patch the u32 size/count header words of a Skyway or Cereal stream."""
    size_lie = bytearray(data)
    size_lie[0:4] = struct.pack("<I", 0x7FFF_FFF8)
    count_lie = bytearray(data)
    count_lie[4:8] = struct.pack("<I", 0x7FFF_FFF0)
    return [
        AdversarialSample(
            name=f"{format_name}/header_size_lie/0",
            format_name=format_name,
            kind="header_size_lie",
            data=bytes(size_lie),
            must_reject=True,
        ),
        AdversarialSample(
            name=f"{format_name}/header_count_lie/0",
            format_name=format_name,
            kind="header_count_lie",
            data=bytes(count_lie),
            must_reject=True,
        ),
    ]


def build_corpus(
    seed: int = DEFAULT_SEED,
    truncations: int = 8,
    bitflips: int = 8,
    garbage: int = 4,
    workload: str = "tree-narrow",
) -> AdversarialCorpus:
    """Generate the full seeded corpus across every format.

    One valid baseline stream per format is produced from ``workload``,
    then mutated; the crafted attacks are appended. Identical
    ``(seed, counts, workload)`` always yields identical bytes.
    """
    rng = random.Random(seed)
    registry = KlassRegistry()
    register_micro_klasses(registry)
    # A primitive array klass so the crafted array-bomb attacks have a
    # registered class ID to point their absurd length claims at.
    registry.array_klass(FieldKind.LONG)
    heap = Heap(registry=registry)
    root = build_microbench(heap, workload)
    registration = ClassRegistration()
    for klass in registry:
        registration.register(klass)

    samples: List[AdversarialSample] = []
    for format_name in FORMAT_NAMES:
        serializer = make_serializer(format_name, registration)
        baseline = serializer.serialize(root).stream.data
        samples.extend(
            _mutations(rng, format_name, baseline, truncations, bitflips, garbage)
        )
        if format_name in ("skyway", "cereal"):
            samples.extend(_header_lie_attacks(format_name, baseline))
    samples.extend(_kryo_attacks(registration))
    samples.extend(_javaser_attacks())
    return AdversarialCorpus(
        seed=seed,
        samples=samples,
        registry=registry,
        registration=registration,
    )
