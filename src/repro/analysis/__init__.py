"""Reporting helpers: aligned text tables and experiment result records."""

from repro.analysis.report import ReportTable, format_speedup, geomean

__all__ = ["ReportTable", "format_speedup", "geomean"]
