"""Reporting helpers: aligned text tables and experiment result records.

Also re-exports :class:`~repro.faults.report.FaultReport` so chaos runs can
be summarized next to the timing tables (``FaultReport.to_text()`` renders
through :class:`ReportTable`).
"""

from repro.analysis.report import ReportTable, format_speedup, geomean, percentile
from repro.faults.report import FaultReport, LayerFaultStats

__all__ = [
    "ReportTable",
    "format_speedup",
    "geomean",
    "percentile",
    "FaultReport",
    "LayerFaultStats",
]
