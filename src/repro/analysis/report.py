"""Plain-text report tables for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures as an
aligned text table, printed to stdout and optionally persisted under
``benchmarks/results/`` so the reproduction record survives pytest's
output capturing.
"""

from __future__ import annotations

import math
import os
from typing import List, Optional, Sequence

from repro.obs.metrics import exact_quantile


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's aggregate for speedups)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    return math.exp(sum(math.log(v) for v in filtered) / len(filtered))


def format_speedup(value: float) -> str:
    return f"{value:.2f}x"


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` (``q`` in [0, 100]).

    A thin wrapper over :func:`repro.obs.metrics.exact_quantile` — the one
    quantile definition the SLO summaries, the obs histograms, and the
    trace exports all share, so every report agrees on what "p99" means.
    Edge cases are exact: an empty series raises a clear
    :class:`ValueError`, a single sample is returned unchanged, and
    ``q == 0`` / ``q == 100`` give the true min / max.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        raise ValueError("cannot take a percentile of no samples")
    return exact_quantile(sorted(values), q)


class ReportTable:
    """An aligned text table with a title and optional footnotes."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []
        self.notes: List[str] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([self._render(cell) for cell in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    @staticmethod
    def _render(cell) -> str:
        if isinstance(cell, float):
            if cell and abs(cell) < 0.01:
                return f"{cell:.4f}"
            return f"{cell:,.2f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(name) for name in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            name.ljust(widths[index]) for index, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def show(self) -> str:
        text = self.render()
        print("\n" + text + "\n")
        return text

    def save(self, directory: str, name: str) -> str:
        """Persist under ``directory/name.txt``; returns the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render() + "\n")
        return path
