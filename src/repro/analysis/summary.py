"""Aggregate the benchmark result tables into one reproduction report.

After ``pytest benchmarks/ --benchmark-only`` has populated
``benchmarks/results/``, this module collates every saved table into a
single document (stdout and ``benchmarks/results/SUMMARY.txt``):

    python -m repro.analysis.summary [results_dir]
"""

from __future__ import annotations

import os
import sys
from typing import List, Tuple

#: Presentation order: paper figure/table order, then ablations.
_ORDER = [
    "table01_config",
    "fig02a_breakdown_java",
    "fig02b_breakdown_kryo",
    "fig03a_ipc",
    "fig03b_llc",
    "fig03c_bandwidth",
    "fig03d_kryo_speedup",
    "fig10_serialize",
    "fig10_deserialize",
    "fig11_bandwidth",
    "table04_sizes",
    "fig12_jsbs_speedup",
    "fig12_jsbs_sizes",
    "fig13_spark_sd_speedup",
    "fig14_program_speedup",
    "fig15_spark_bandwidth",
    "fig16_compression",
    "table05_area_power",
    "fig17_energy",
    "ablation_packing",
    "ablation_pipelining",
    "ablation_reconstructors",
    "ablation_prefetch_depth",
    "ablation_unit_pool",
    "ablation_mai_coalescing",
    "ablation_mai_entries",
    "ablation_coherence",
    "fault_recovery",
    "service_scaling",
]


def collect_reports(results_dir: str) -> List[Tuple[str, str]]:
    """(name, text) for every saved table, in presentation order."""
    if not os.path.isdir(results_dir):
        raise FileNotFoundError(
            f"no results directory at {results_dir!r}; run "
            f"`pytest benchmarks/ --benchmark-only` first"
        )
    available = {
        name[:-4]: os.path.join(results_dir, name)
        for name in os.listdir(results_dir)
        if name.endswith(".txt") and name != "SUMMARY.txt"
    }
    ordered = [name for name in _ORDER if name in available]
    ordered.extend(sorted(set(available) - set(_ORDER)))
    reports = []
    for name in ordered:
        with open(available[name], "r", encoding="utf-8") as handle:
            reports.append((name, handle.read().rstrip()))
    return reports


def build_summary(results_dir: str) -> str:
    """Concatenate every report under a single banner."""
    reports = collect_reports(results_dir)
    lines = [
        "Cereal (ISCA 2020) reproduction — collected experiment results",
        "#" * 62,
        f"{len(reports)} tables from {results_dir}",
        "",
    ]
    for name, text in reports:
        lines.append(text)
        lines.append("")
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    default_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))),
        "benchmarks",
        "results",
    )
    results_dir = argv[1] if len(argv) > 1 else default_dir
    try:
        summary = build_summary(results_dir)
    except FileNotFoundError as error:
        print(error, file=sys.stderr)
        return 1
    print(summary)
    out_path = os.path.join(results_dir, "SUMMARY.txt")
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(summary + "\n")
    print(f"(written to {out_path})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
