"""Accelerator TLB (paper Section V-E, "Address Translation").

Cereal assumes 1 GB huge pages; with a 128-entry TLB and a 128 GB physical
memory there are effectively no misses on the evaluated system, but the
model still tracks hits/misses and charges a page-walk penalty so larger
memories (or smaller pages, for ablations) behave sensibly. Replacement is
LRU.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.errors import SimulationError

DEFAULT_ENTRIES = 128
DEFAULT_PAGE_BYTES = 1 << 30  # 1 GB huge pages
PAGE_WALK_NS = 120.0  # four-level walk from memory, amortized


class TLB:
    """LRU translation lookaside buffer with hit/miss accounting."""

    def __init__(
        self,
        entries: int = DEFAULT_ENTRIES,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        walk_ns: float = PAGE_WALK_NS,
    ):
        if entries <= 0:
            raise SimulationError("TLB needs at least one entry")
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise SimulationError("page size must be a positive power of two")
        self.entries = entries
        self.page_bytes = page_bytes
        self.walk_ns = walk_ns
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def translate(self, address: int) -> float:
        """Translate ``address``; returns the added latency in nanoseconds."""
        page = address // self.page_bytes
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return 0.0
        self.misses += 1
        self._pages[page] = None
        if len(self._pages) > self.entries:
            self._pages.popitem(last=False)
        return self.walk_ns

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
