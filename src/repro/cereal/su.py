"""Serialization Unit timing model (paper Section V-B, Figure 7).

The SU is a four-stage pipeline working through the object graph in the
order its internal reference queue discovers it (breadth-first):

* **header manager (HM)** — reads each encountered object's header, checks
  the visited counter, assigns/fetches the relative address, and updates
  the header with an atomic RMW through the MAI. For a *new* object it
  cannot proceed past the relative-address assignment until the object
  metadata manager has returned the previous new object's size (the
  serialized-size counter dependency the paper calls out).
* **object metadata manager (OMM)** — fetches the klass metadata (object
  layout + size) from memory, generates the packed layout bitmap, and
  stores it (posted 64 B writes).
* **object handler (OH)** — loads the object image, separates values from
  references using the layout, translates the klass pointer to a class ID
  through the Klass Pointer Table CAM, buffers values into 64 B chunks
  stored to the value array, and feeds extracted references back to the HM
  queue (in original order, via the MAI reorder buffers).
* **reference array writer (RAW)** — packs each relative address
  (significant bits + end bit, Section IV-B) into the reference array.

With ``pipelined=False`` ("Cereal Vanilla", Figure 10) the stages do not
overlap across objects: each object's full HM→OMM→OH→RAW chain completes
before the next encounter starts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.bitutils import significant_bits
from repro.common.config import CerealConfig
from repro.cereal.mai import MemoryAccessInterface
from repro.cereal.tables import KlassPointerTable
from repro.formats.registry import ClassRegistration
from repro.jvm.heap import HeapObject

# Synthetic physical placement of the serialized output (disjoint from the
# heap) so output writes map onto DRAM channels like any other traffic.
OUTPUT_REGION_BASE = 0x40_0000_0000
_VALUE_REGION = 0x0_0000_0000
_REF_REGION = 0x1_0000_0000
_BITMAP_REGION = 0x2_0000_0000

_HM_CYCLE_NS = 1.0  # per-encounter header-manager occupancy
_OMM_BITMAP_BITS_PER_CYCLE = 64  # bitmap generation throughput
_OH_SLOTS_PER_CYCLE = 1.0  # value/reference extraction rate
_RAW_ITEMS_PER_CYCLE = 1.0  # packing throughput
_KLASS_METADATA_BYTES = 32  # layout + size fetched per class
_FALLBACK_NS = 60.0  # software visited-hash insert when a header is foreign


@dataclass
class SUResult:
    """Timing and traffic of one serialization operation on one SU."""

    start_ns: float
    finish_ns: float
    objects: int
    encounters: int  # reference-queue pops (visited re-encounters included)
    null_references: int
    heap_bytes_read: int
    value_bytes_written: int
    reference_bytes_written: int
    bitmap_bytes_written: int
    stalls_on_counter_ns: float = 0.0
    # Section V-E shared-object support: objects whose header area was
    # reserved by a different unit, forcing the software-fallback path
    # (a thread-local hash table instead of the header metadata).
    fallback_objects: int = 0

    @property
    def elapsed_ns(self) -> float:
        return self.finish_ns - self.start_ns

    @property
    def stream_bytes_written(self) -> int:
        return (
            self.value_bytes_written
            + self.reference_bytes_written
            + self.bitmap_bytes_written
        )


class _BufferedStore:
    """64 B write-combining buffer in front of the MAI (posted stores)."""

    def __init__(self, mai: MemoryAccessInterface, base: int, chunk: int = 64):
        self.mai = mai
        self.base = base
        self.chunk = chunk
        self.pending = 0
        self.total = 0

    def push(self, when_ns: float, nbytes: int) -> None:
        self.pending += nbytes
        self.total += nbytes
        while self.pending >= self.chunk:
            self.mai.write(when_ns, self.base + self.total - self.pending, self.chunk)
            self.pending -= self.chunk

    def flush(self, when_ns: float) -> None:
        if self.pending:
            self.mai.write(when_ns, self.base + self.total - self.pending, self.pending)
            self.pending = 0


class SerializationUnit:
    """Cycle-accounted model of one SU."""

    def __init__(
        self,
        mai: MemoryAccessInterface,
        klass_table: KlassPointerTable,
        config: Optional[CerealConfig] = None,
        unit_id: int = 0,
    ):
        self.mai = mai
        self.klass_table = klass_table
        self.config = config or CerealConfig()
        self.unit_id = unit_id

    def run(
        self,
        root: HeapObject,
        registration: ClassRegistration,
        start_ns: float = 0.0,
        output_base: int = OUTPUT_REGION_BASE,
        serialization_counter: int = 1,
    ) -> SUResult:
        """Simulate serializing the graph under ``root``; returns timing.

        Visited tracking uses the Section V-E header-extension mechanism
        when the heap carries the Cereal extension: an object is "visited"
        when its header's 16-bit counter equals ``serialization_counter``,
        and the unit claims the header area by writing its unit ID. A
        header already claimed by a *different* unit in the same counter
        epoch forces the software-fallback path for that object (thread-
        local hash table), which costs extra time but stays functionally
        identical.
        """
        pipelined = self.config.pipelined
        heap = root.heap
        use_header_metadata = heap.cereal_extension

        value_store = _BufferedStore(self.mai, output_base + _VALUE_REGION)
        ref_store = _BufferedStore(self.mai, output_base + _REF_REGION)
        bitmap_store = _BufferedStore(self.mai, output_base + _BITMAP_REGION)

        hm_free = start_ns
        omm_free = start_ns
        oh_free = start_ns
        raw_free = start_ns
        counter_ready = start_ns  # serialized-size counter availability

        visited: Dict[int, bool] = {}
        fallback_visited: Dict[int, int] = {}  # software hash table path
        # Queue entries: (object, time the reference became available to HM).
        queue: deque = deque([(root, start_ns)])
        objects = 0
        encounters = 0
        null_references = 0
        heap_bytes_read = 0
        stalls = 0.0
        fallback_objects = 0
        serialized_size = 0  # the HM's running relative-address counter

        def is_visited(obj: HeapObject) -> bool:
            if obj.address in fallback_visited:
                return True
            if use_header_metadata:
                # Only this unit's own claim counts: a header claimed by a
                # different unit belongs to a concurrent operation whose
                # stream this one cannot reference.
                return (
                    obj.serialization_counter == serialization_counter
                    and obj.serialization_unit_id == self.unit_id + 1
                )
            return obj.address in visited

        def mark_visited(obj: HeapObject, relative: int) -> bool:
            """Claim the header; returns False when falling back to software."""
            if not use_header_metadata:
                visited[obj.address] = True
                return True
            if (
                obj.serialization_counter == serialization_counter
                and obj.serialization_unit_id != self.unit_id + 1
            ):
                # Another unit holds this header in the current epoch
                # (shared object across concurrent operations).
                fallback_visited[obj.address] = relative
                return False
            obj.serialization_counter = serialization_counter
            obj.serialization_unit_id = self.unit_id + 1
            obj.serialized_relative_address = relative & 0xFFFF_FFFF
            return True

        while queue:
            obj, available_ns = queue.popleft()
            encounters += 1

            # -- header manager: read and inspect the (extended) header.
            hm_start = max(hm_free, available_ns)
            header_done = self.mai.read(hm_start, obj.address, 16)
            if is_visited(obj):
                # Relative address already in the header: forward to RAW.
                hm_free = header_done + _HM_CYCLE_NS
                raw_free = max(raw_free, header_done) + 1.0 / _RAW_ITEMS_PER_CYCLE
                ref_store.push(raw_free, self._packed_ref_bytes(obj))
                continue
            objects += 1

            # New object: assigning its relative address needs the size
            # counter, which the OMM updates for the previous new object.
            assign_ns = max(header_done, counter_ready)
            stalls += max(0.0, counter_ready - header_done)
            if not mark_visited(obj, serialized_size):
                # Software fallback: thread-local hash-table insert + probe
                # replaces the header RMW (Section V-E).
                fallback_objects += 1
                assign_ns += _FALLBACK_NS
            else:
                self.mai.atomic_rmw(assign_ns, obj.address + 16, 8)
            serialized_size += obj.size_bytes
            hm_free = assign_ns + _HM_CYCLE_NS
            raw_free = max(raw_free, assign_ns) + 1.0 / _RAW_ITEMS_PER_CYCLE
            ref_store.push(raw_free, self._packed_ref_bytes(obj))

            # -- object metadata manager: fetch klass metadata, make bitmap.
            assert obj.klass.metaspace_address is not None
            omm_start = max(omm_free, assign_ns)
            metadata_done = self.mai.read(
                omm_start, obj.klass.metaspace_address, _KLASS_METADATA_BYTES
            )
            counter_ready = metadata_done + 1.0
            bitmap_cycles = (
                obj.total_slots + _OMM_BITMAP_BITS_PER_CYCLE - 1
            ) // _OMM_BITMAP_BITS_PER_CYCLE
            omm_free = metadata_done + bitmap_cycles
            bitmap_store.push(omm_free, self._packed_bitmap_bytes(obj))

            # -- object handler: load the object, split values/references.
            oh_start = max(oh_free, metadata_done)
            load_done = self.mai.read(oh_start, obj.address, obj.size_bytes)
            heap_bytes_read += obj.size_bytes
            extract_ns = obj.total_slots / _OH_SLOTS_PER_CYCLE
            oh_done = max(oh_start, load_done) + extract_ns
            # Klass pointer -> class ID CAM lookup (single cycle).
            self.klass_table.lookup(obj.klass.metaspace_address)
            oh_done += 1.0
            oh_free = oh_done

            reference_slots = set(obj.reference_slots())
            value_slots = obj.total_slots - len(reference_slots)
            value_store.push(oh_done, value_slots * 8)
            for child in obj.referenced_objects():
                if child is None:
                    null_references += 1
                    raw_free = max(raw_free, oh_done) + 1.0 / _RAW_ITEMS_PER_CYCLE
                    ref_store.push(raw_free, 1)  # packed null: 1 bucket
                else:
                    queue.append((child, oh_done))

            if not pipelined:
                # Cereal Vanilla: full per-object chain, no stage overlap.
                barrier = max(hm_free, omm_free, oh_free, raw_free)
                hm_free = omm_free = oh_free = raw_free = barrier
                counter_ready = min(counter_ready, barrier)

        finish = max(hm_free, omm_free, oh_free, raw_free)
        value_store.flush(finish)
        ref_store.flush(finish)
        bitmap_store.flush(finish)
        # End maps for the two packed structures (1 bit per packed byte).
        end_map_bytes = (ref_store.total + 7) // 8 + (bitmap_store.total + 7) // 8
        self.mai.write(finish, OUTPUT_REGION_BASE + _REF_REGION + ref_store.total,
                       max(1, end_map_bytes))
        finish = self.mai.drain(finish)

        return SUResult(
            start_ns=start_ns,
            finish_ns=finish,
            objects=objects,
            encounters=encounters,
            null_references=null_references,
            heap_bytes_read=heap_bytes_read,
            value_bytes_written=value_store.total,
            reference_bytes_written=ref_store.total + end_map_bytes,
            bitmap_bytes_written=bitmap_store.total,
            stalls_on_counter_ns=stalls,
            fallback_objects=fallback_objects,
        )

    # -- packed-size helpers (exact per-item byte counts, Section IV-B) ----------

    @staticmethod
    def _packed_ref_bytes(obj: HeapObject) -> int:
        """Packed bytes of one relative-address item for ``obj``.

        The relative address is bounded by the graph size; we use the
        object's own image offset proxy (its heap offset) which has the
        same magnitude distribution. Exact stream bytes come from the
        functional encoder; this is timing-side accounting only.
        """
        relative = max(1, obj.address & 0xFFFF_FFFF)
        return (significant_bits(relative) + 1 + 7) // 8

    @staticmethod
    def _packed_bitmap_bytes(obj: HeapObject) -> int:
        return (obj.total_slots + 1 + 7) // 8
