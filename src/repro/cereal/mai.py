"""Memory Access Interface (paper Section V-A).

The MAI is the accelerator's only path to memory. The paper gives it:

* a 64-entry associative memory tracking outstanding requests, used for
  **request coalescing** (as in conventional MSHRs) — a second read of a
  32 B block that is already in flight (or recently completed and still
  tracked) attaches to the existing entry instead of re-accessing DRAM;
* **reorder buffers** so requesters receive responses in request order —
  modelled by returning, for each logical read, the max completion time of
  its blocks (order restoration adds no throughput, only the wait);
* **atomic read-modify-write** support so the header manager can update
  visited metadata race-free (modelled as a read followed by a posted
  write that occupies the entry one extra cycle).

Writes are posted: the requester continues once the write is handed to the
MAI; drained-by time is tracked so an operation's completion includes its
write traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.config import CerealConfig
from repro.common.errors import SimulationError
from repro.cereal.tlb import TLB
from repro.memory.dram import DRAMModel


@dataclass
class MAIStats:
    read_requests: int = 0
    write_requests: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    coalesced_blocks: int = 0
    atomic_rmws: int = 0

    @property
    def coalescing_rate(self) -> float:
        total = self.blocks_read + self.coalesced_blocks
        if not total:
            return 0.0
        return self.coalesced_blocks / total


class MemoryAccessInterface:
    """Coalescing front-end between one Cereal unit pool and DRAM."""

    def __init__(
        self,
        dram: DRAMModel,
        config: CerealConfig | None = None,
        tlb: TLB | None = None,
        coalescing: bool = True,
    ):
        self.dram = dram
        self.config = config or CerealConfig()
        self.tlb = tlb or TLB(entries=self.config.tlb_entries)
        self.coalescing = coalescing
        self.block_bytes = self.config.mai_block_bytes
        # Outstanding/recent block entries: block index -> completion ns.
        self._entries: OrderedDict[int, float] = OrderedDict()
        self.stats = MAIStats()
        self.last_drain_ns = 0.0

    # -- helpers ---------------------------------------------------------------

    def _blocks_of(self, address: int, length: int):
        if length <= 0:
            raise SimulationError(f"access length must be positive, got {length}")
        first = address // self.block_bytes
        last = (address + length - 1) // self.block_bytes
        return range(first, last + 1)

    def _track(self, block: int, completion: float) -> None:
        self._entries[block] = completion
        self._entries.move_to_end(block)
        if len(self._entries) > self.config.mai_entries:
            self._entries.popitem(last=False)

    # -- reads ------------------------------------------------------------------

    def read(self, when_ns: float, address: int, length: int) -> float:
        """Issue a read; returns the in-order completion time (ns)."""
        self.stats.read_requests += 1
        when_ns += self.tlb.translate(address)
        completion = when_ns
        for block in self._blocks_of(address, length):
            tracked = self._entries.get(block) if self.coalescing else None
            if tracked is not None:
                # Coalesce onto the outstanding/recent entry.
                self.stats.coalesced_blocks += 1
                block_done = max(when_ns, tracked)
            else:
                self.stats.blocks_read += 1
                block_done = self.dram.access(
                    when_ns,
                    block * self.block_bytes,
                    self.block_bytes,
                    is_write=False,
                )
                # Coherence "get": fetching the up-to-date copy may take a
                # detour through the host's cache hierarchy (Section V-E).
                block_done += self.config.coherence_extra_read_ns
                self._track(block, block_done)
            completion = max(completion, block_done)
        return completion

    # -- writes (posted) ------------------------------------------------------------

    def write(self, when_ns: float, address: int, length: int) -> float:
        """Post a write; returns the hand-off time (requester continues)."""
        self.stats.write_requests += 1
        when_ns += self.tlb.translate(address)
        for block in self._blocks_of(address, length):
            self.stats.blocks_written += 1
            done = self.dram.access(
                when_ns, block * self.block_bytes, self.block_bytes, is_write=True
            )
            self._track(block, done)
            self.last_drain_ns = max(self.last_drain_ns, done)
        return when_ns + 1.0  # one cycle to enqueue into the MAI

    # -- atomic read-modify-write ------------------------------------------------------

    def atomic_rmw(self, when_ns: float, address: int, length: int = 8) -> float:
        """Atomic update (visited-bit / relative-address header writes)."""
        self.stats.atomic_rmws += 1
        read_done = self.read(when_ns, address, length)
        # The buffered RMW entry applies the modify and writes back without
        # stalling the requester beyond the read; the writeback is posted.
        self.write(read_done, address, length)
        return read_done + 1.0

    def drain(self, when_ns: float) -> float:
        """Time by which all posted writes are globally visible."""
        return max(when_ns, self.last_drain_ns)
