"""Device-level simulation: many units contending on one memory system.

:meth:`CerealAccelerator.run_batch` estimates batch time analytically (unit
pools + a bandwidth floor). :class:`DeviceSimulator` instead *simulates* the
batch: every unit gets its own MAI front-end (its own coalescing tracker and
TLB) but all of them share a single :class:`~repro.memory.dram.DRAMModel`,
so channel contention between concurrently active units emerges from the
channel occupancy model rather than from a closed-form correction.

Operations are dispatched to the unit (SU or DU pool by kind) that frees
earliest — the request scheduler's policy — and each unit runs its queue
back-to-back. Units are simulated in dispatch order; the shared channel
state carries their interference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.cereal.du import DeserializationUnit, DUWorkload
from repro.cereal.mai import MemoryAccessInterface
from repro.cereal.su import SerializationUnit
from repro.cereal.tlb import TLB
from repro.common.errors import SimulationError
from repro.formats.base import SerializedStream
from repro.formats.cereal_format import CerealSerializer
from repro.jvm.heap import Heap, HeapObject
from repro.memory.dram import DRAMModel


@dataclass
class DeviceOperation:
    """One completed operation inside a device run."""

    kind: str  # "serialize" | "deserialize"
    unit_index: int
    start_ns: float
    finish_ns: float
    graph_bytes: int
    stream: Optional[SerializedStream] = None
    root: Optional[HeapObject] = None

    @property
    def elapsed_ns(self) -> float:
        return self.finish_ns - self.start_ns


@dataclass
class DeviceRunResult:
    """Outcome of one batch on the device."""

    operations: List[DeviceOperation]
    wall_time_ns: float
    dram_bytes: int
    bandwidth_utilization: float

    @property
    def total_graph_bytes(self) -> int:
        return sum(op.graph_bytes for op in self.operations)

    @property
    def throughput_bytes_per_sec(self) -> float:
        if self.wall_time_ns <= 0:
            return 0.0
        return self.total_graph_bytes / (self.wall_time_ns * 1e-9)

    def unit_timeline(self) -> "dict[Tuple[str, int], List[DeviceOperation]]":
        """Operations grouped per physical unit, in dispatch order.

        Keys are ``(kind, unit_index)`` — serialize ops run on the SU pool
        and deserialize ops on the DU pool, so the same index under a
        different kind is a different piece of hardware. The scheduling
        invariants (no overlap on a unit, per-unit monotone finish times)
        are assertions over these lists.
        """
        timeline: dict = {}
        for op in self.operations:
            timeline.setdefault((op.kind, op.unit_index), []).append(op)
        return timeline

    def emit_spans(self, tracer, base_ns: float = 0.0, parent=None,
                   track: str = "device") -> int:
        """Record each operation as a child span on ``tracer``.

        Operation times are relative to the batch (unit 0 starts at 0);
        ``base_ns`` rebases them onto the caller's simulated clock — the
        service layer passes the batch's dispatch time so unit activity
        lines up under the request spans. Returns the number of spans
        recorded (0 when the tracer is disabled).
        """
        if not tracer.enabled:
            return 0
        emitted = 0
        for op in self.operations:
            tracer.record_span(
                f"{'su' if op.kind == 'serialize' else 'du'}{op.unit_index}.{op.kind}",
                base_ns + op.start_ns,
                base_ns + op.finish_ns,
                category="device",
                track=track,
                parent=parent,
                unit=op.unit_index,
                graph_bytes=op.graph_bytes,
            )
            emitted += 1
        return emitted


#: A request: ("serialize", root) or ("deserialize", stream, destination heap).
SerializeRequest = Tuple[str, HeapObject]
DeserializeRequest = Tuple[str, SerializedStream, Heap]
DeviceRequest = Union[SerializeRequest, DeserializeRequest]


class DeviceSimulator:
    """Shared-memory-system execution of a batch of S/D requests."""

    def __init__(self, accelerator) -> None:
        self.accelerator = accelerator
        self.config = accelerator.config
        self.dram_config = accelerator.dram_config

    def run(self, requests: Sequence[DeviceRequest]) -> DeviceRunResult:
        if not requests:
            return DeviceRunResult(
                operations=[], wall_time_ns=0.0, dram_bytes=0,
                bandwidth_utilization=0.0,
            )
        dram = DRAMModel(self.dram_config, out_of_order=True)

        def make_mai() -> MemoryAccessInterface:
            tlb = TLB(
                entries=self.config.tlb_entries,
                page_bytes=self.config.page_bytes,
            )
            return MemoryAccessInterface(dram, self.config, tlb=tlb)

        su_free = [0.0] * self.config.num_serializer_units
        du_free = [0.0] * self.config.num_deserializer_units
        su_mais = [make_mai() for _ in su_free]
        du_mais = [make_mai() for _ in du_free]

        operations: List[DeviceOperation] = []
        wall_time = 0.0
        for request in requests:
            kind = request[0]
            if kind == "serialize":
                _, root = request  # type: ignore[misc]
                unit_index = min(range(len(su_free)), key=lambda i: su_free[i])
                start = su_free[unit_index]
                result = self.accelerator.codec.serialize(root)
                unit = SerializationUnit(
                    su_mais[unit_index],
                    self.accelerator.klass_pointer_table,
                    self.config,
                    unit_id=unit_index,
                )
                epoch = root.heap.next_serialization_epoch(
                    self.config.header_counter_bits
                )
                su = unit.run(
                    root,
                    self.accelerator.registration,
                    start_ns=start,
                    serialization_counter=epoch,
                )
                su_free[unit_index] = su.finish_ns
                operations.append(
                    DeviceOperation(
                        kind="serialize",
                        unit_index=unit_index,
                        start_ns=start,
                        finish_ns=su.finish_ns,
                        graph_bytes=result.stream.graph_bytes,
                        stream=result.stream,
                    )
                )
                wall_time = max(wall_time, su.finish_ns)
            elif kind == "deserialize":
                _, stream, heap = request  # type: ignore[misc]
                unit_index = min(range(len(du_free)), key=lambda i: du_free[i])
                start = du_free[unit_index]
                deser = self.accelerator.codec.deserialize(stream, heap)
                sections = CerealSerializer.decode_sections(stream)
                workload = DUWorkload.from_stream_sections(sections)
                unit = DeserializationUnit(
                    du_mais[unit_index],
                    self.accelerator.class_id_table,
                    self.config,
                    unit_id=unit_index,
                )
                du = unit.run(
                    workload,
                    destination_base=deser.root.address,
                    start_ns=start,
                )
                du_free[unit_index] = du.finish_ns
                operations.append(
                    DeviceOperation(
                        kind="deserialize",
                        unit_index=unit_index,
                        start_ns=start,
                        finish_ns=du.finish_ns,
                        graph_bytes=sections.graph_total_bytes,
                        root=deser.root,
                    )
                )
                wall_time = max(wall_time, du.finish_ns)
            else:
                raise SimulationError(f"unknown device request kind {kind!r}")

        utilization = dram.stats.bandwidth_utilization(
            wall_time, self.dram_config
        )
        return DeviceRunResult(
            operations=operations,
            wall_time_ns=wall_time,
            dram_bytes=dram.stats.total_bytes,
            bandwidth_utilization=min(1.0, utilization),
        )
