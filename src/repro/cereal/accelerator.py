"""The Cereal device: command queue, request scheduler, unit pools.

:class:`CerealAccelerator` is the integration point a host runtime uses
(paper Section V-A software interface):

* ``initialize()`` — construct the device with a configuration;
* ``register_class(klass)`` — populate the type registration, the Klass
  Pointer Table (CAM), and the Class ID Table (SRAM);
* ``serialize(root)`` / ``deserialize(stream, heap)`` — perform the
  operation *functionally* (producing/consuming real Cereal-format bytes
  through :class:`repro.formats.CerealSerializer`) and simultaneously run
  the cycle-level SU/DU model to produce an :class:`OperationTiming`;
* ``run_batch(requests)`` — schedule many independent operations across
  the 8 SU / 8 DU pools (operation-level parallelism), respecting the
  command-queue model and the shared-DRAM bandwidth ceiling.

Each single operation is timed against an otherwise-idle memory system, as
in the paper's per-operation measurements; batches add a bandwidth-sharing
correction so aggregate throughput can never exceed the DDR4 peak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.config import CerealConfig, DRAMConfig
from repro.common.errors import SimulationError
from repro.cereal.du import DeserializationUnit, DUResult, DUWorkload
from repro.cereal.mai import MemoryAccessInterface
from repro.cereal.su import SerializationUnit, SUResult
from repro.cereal.tables import ClassIDTable, KlassPointerTable
from repro.cereal.tlb import TLB
from repro.formats.base import SerializationResult, SerializedStream
from repro.formats.cereal_format import CerealSerializer
from repro.formats.registry import ClassRegistration
from repro.jvm.heap import Heap, HeapObject
from repro.memory.dram import DRAMModel


@dataclass
class OperationTiming:
    """Cycle-model outcome of one S/D operation."""

    kind: str  # "serialize" | "deserialize"
    elapsed_ns: float
    graph_bytes: int
    stream_bytes: int
    dram_bytes: int
    bandwidth_utilization: float  # fraction of DDR4 peak during the op
    objects: int

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ns * 1e-9

    @property
    def throughput_bytes_per_sec(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.graph_bytes / (self.elapsed_ns * 1e-9)


class CerealAccelerator:
    """Functional + timing model of the whole Cereal device."""

    def __init__(
        self,
        config: Optional[CerealConfig] = None,
        dram_config: Optional[DRAMConfig] = None,
        registration: Optional[ClassRegistration] = None,
    ):
        self.config = config or CerealConfig()
        self.dram_config = dram_config or DRAMConfig()
        if registration is None:
            registration = ClassRegistration(max_entries=self.config.max_class_types)
        self.registration = registration
        self.klass_pointer_table = KlassPointerTable(self.config.max_class_types)
        self.class_id_table = ClassIDTable(self.config.max_class_types)
        self.codec = CerealSerializer(registration)
        # Re-install any classes registered before the device was built.
        for class_id, klass in enumerate(registration):
            self._install_tables(klass, class_id)

    # -- software interface (Section V-A) ----------------------------------------

    def register_class(self, klass) -> int:
        """``RegisterClass(Class Type)``: type registry + hardware tables."""
        class_id = self.registration.register(klass)
        self._install_tables(klass, class_id)
        return class_id

    def _install_tables(self, klass, class_id: int) -> None:
        if klass.metaspace_address is None:
            raise SimulationError(
                f"klass {klass.name!r} has no metaspace address; register it "
                f"with a KlassRegistry (heap) before RegisterClass"
            )
        self.klass_pointer_table.install(klass.metaspace_address, class_id)
        self.class_id_table.install(class_id, klass.metaspace_address)

    # -- single operations -----------------------------------------------------------

    def _fresh_memory_system(self) -> MemoryAccessInterface:
        dram = DRAMModel(self.dram_config)
        tlb = TLB(entries=self.config.tlb_entries, page_bytes=self.config.page_bytes)
        return MemoryAccessInterface(dram, self.config, tlb=tlb)

    def serialize(
        self, root: HeapObject
    ) -> Tuple[SerializationResult, OperationTiming, SUResult]:
        """Serialize functionally and time the SU pipeline."""
        result = self.codec.serialize(root)
        mai = self._fresh_memory_system()
        unit = SerializationUnit(mai, self.klass_pointer_table, self.config)
        epoch = root.heap.next_serialization_epoch(
            self.config.header_counter_bits
        )
        su = unit.run(root, self.registration, serialization_counter=epoch)
        timing = self._timing_from(
            "serialize",
            su.elapsed_ns,
            mai,
            graph_bytes=result.stream.graph_bytes,
            stream_bytes=result.stream.size_bytes,
            objects=result.stream.object_count,
        )
        return result, timing, su

    def deserialize(
        self, stream: SerializedStream, heap: Heap
    ) -> Tuple[HeapObject, OperationTiming, DUResult]:
        """Deserialize functionally and time the DU pipeline."""
        deser = self.codec.deserialize(stream, heap)
        sections = CerealSerializer.decode_sections(stream)
        workload = DUWorkload.from_stream_sections(sections)
        mai = self._fresh_memory_system()
        unit = DeserializationUnit(mai, self.class_id_table, self.config)
        du = unit.run(workload, destination_base=deser.root.address)
        timing = self._timing_from(
            "deserialize",
            du.elapsed_ns,
            mai,
            graph_bytes=sections.graph_total_bytes,
            stream_bytes=stream.size_bytes,
            objects=sections.object_count,
        )
        return deser.root, timing, du

    def _timing_from(
        self,
        kind: str,
        elapsed_ns: float,
        mai: MemoryAccessInterface,
        graph_bytes: int,
        stream_bytes: int,
        objects: int,
    ) -> OperationTiming:
        dram_bytes = mai.dram.stats.total_bytes
        utilization = mai.dram.stats.bandwidth_utilization(
            elapsed_ns, self.dram_config
        )
        return OperationTiming(
            kind=kind,
            elapsed_ns=elapsed_ns,
            graph_bytes=graph_bytes,
            stream_bytes=stream_bytes,
            dram_bytes=dram_bytes,
            bandwidth_utilization=min(1.0, utilization),
            objects=objects,
        )

    def serialize_concurrent(
        self, roots: Sequence[HeapObject]
    ) -> List[Tuple[SerializationResult, OperationTiming, SUResult]]:
        """Serialize several graphs concurrently across the SU pool.

        All operations share one visited-tracking epoch (they overlap in
        time), so a *shared object* reachable from more than one root is
        claimed by whichever unit reaches it first; the other units detect
        the foreign unit ID in its header and take the software-fallback
        path for it (Section V-E). Returns one result triple per root;
        aggregate wall time comes from :meth:`run_batch` over the timings.
        """
        if not roots:
            return []
        epoch = roots[0].heap.next_serialization_epoch(
            self.config.header_counter_bits
        )
        results = []
        for index, root in enumerate(roots):
            if root.heap is not roots[0].heap:
                raise SimulationError(
                    "serialize_concurrent requires all roots on one heap"
                )
            result = self.codec.serialize(root)
            mai = self._fresh_memory_system()
            unit = SerializationUnit(
                mai,
                self.klass_pointer_table,
                self.config,
                unit_id=index % self.config.num_serializer_units,
            )
            su = unit.run(root, self.registration, serialization_counter=epoch)
            timing = self._timing_from(
                "serialize",
                su.elapsed_ns,
                mai,
                graph_bytes=result.stream.graph_bytes,
                stream_bytes=result.stream.size_bytes,
                objects=result.stream.object_count,
            )
            results.append((result, timing, su))
        return results

    # -- batched operations (operation-level parallelism) ------------------------------

    def run_batch(self, timings: Sequence[OperationTiming]) -> float:
        """Aggregate wall time (ns) for independent ops across the unit pools.

        Serialize ops go to the SU pool, deserialize ops to the DU pool.
        Within each pool, ops are assigned greedily (LPT) to the unit that
        frees earliest — the request scheduler's behaviour. The result is
        then floored by the DRAM bandwidth ceiling: the pools share one
        memory system, so aggregate traffic cannot exceed the DDR4 peak.
        """
        if not timings:
            return 0.0
        su_pool = [0.0] * self.config.num_serializer_units
        du_pool = [0.0] * self.config.num_deserializer_units
        total_dram_bytes = 0
        for op in sorted(timings, key=lambda t: -t.elapsed_ns):
            pool = su_pool if op.kind == "serialize" else du_pool
            slot = min(range(len(pool)), key=lambda i: pool[i])
            pool[slot] += op.elapsed_ns
            total_dram_bytes += op.dram_bytes
        pool_time = max(max(su_pool), max(du_pool))
        bandwidth_floor = (
            total_dram_bytes / self.dram_config.peak_bandwidth_bytes_per_sec * 1e9
        )
        return max(pool_time, bandwidth_floor)
