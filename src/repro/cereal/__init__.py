"""Cereal accelerator: cycle-level timing model (paper Section V).

The functional bytes come from :class:`repro.formats.CerealSerializer`; this
package models *when* the hardware produces them:

* :mod:`repro.cereal.tables` — Klass Pointer Table (CAM, 4 KB) and Class ID
  Table (SRAM, 2 KB) with the 4K-type capacity limit;
* :mod:`repro.cereal.tlb` — 128-entry TLB over 1 GB huge pages;
* :mod:`repro.cereal.mai` — Memory Access Interface: 64-entry coalescing
  tracker, reorder buffers, atomic read-modify-write;
* :mod:`repro.cereal.su` — Serialization Unit pipeline (header manager,
  object metadata manager, object handler, reference array writer);
* :mod:`repro.cereal.du` — Deserialization Unit (layout manager, block
  manager, block reconstructors);
* :mod:`repro.cereal.accelerator` — command queue, request scheduler, and
  the multi-unit device façade;
* :mod:`repro.cereal.power` — Table V area/power constants and the energy
  model of Figure 17.
"""

from repro.cereal.tables import ClassIDTable, KlassPointerTable
from repro.cereal.tlb import TLB
from repro.cereal.mai import MemoryAccessInterface
from repro.cereal.su import SerializationUnit, SUResult
from repro.cereal.du import DeserializationUnit, DUResult
from repro.cereal.accelerator import CerealAccelerator, OperationTiming
from repro.cereal.device_sim import DeviceRunResult, DeviceSimulator
from repro.cereal.power import (
    CEREAL_MODULE_SPECS,
    cereal_area_mm2,
    cereal_average_power_watts,
    cereal_energy_joules,
    cpu_energy_joules,
)

__all__ = [
    "KlassPointerTable",
    "ClassIDTable",
    "TLB",
    "MemoryAccessInterface",
    "SerializationUnit",
    "SUResult",
    "DeserializationUnit",
    "DUResult",
    "CerealAccelerator",
    "OperationTiming",
    "DeviceSimulator",
    "DeviceRunResult",
    "CEREAL_MODULE_SPECS",
    "cereal_area_mm2",
    "cereal_average_power_watts",
    "cereal_energy_joules",
    "cpu_energy_joules",
]
