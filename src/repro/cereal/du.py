"""Deserialization Unit timing model (paper Section V-C, Figure 8).

The DU turns a Cereal stream back into a heap image at 64 B *block*
granularity, which is what makes it fast: the decoupled format means a
block can be rebuilt knowing only its 8 layout-bitmap bits, the next N
values, and the next M references — independent of object boundaries.

* **layout manager** — eagerly prefetches the packed layout bitmap through
  an internal buffer, unpacks it, and per 64 B block counts the 0s/1s in
  the 8-bit chunk (single cycle) before handing it to the block manager.
* **block manager** — eagerly prefetches the value array and the packed
  reference array, unpacks references, and for each block pulls exactly
  ``zeros`` values and ``ones`` references, dispatching the bundle to a
  free block reconstructor together with the destination address.
* **block reconstructors** (4 per DU by default) — scatter values and
  references into a 64 B output block according to the bitmap, translate a
  class ID to a klass address through the Class ID Table when the block
  holds an object header, and post the 64 B write.

With ``pipelined=False`` ("Cereal Vanilla") there is a single reconstructor
and no eager prefetch: every block's loads are issued on demand and the
whole per-block chain serializes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.bitutils import significant_bits
from repro.common.config import CerealConfig
from repro.common.errors import SimulationError
from repro.cereal.mai import MemoryAccessInterface
from repro.cereal.tables import ClassIDTable

# Synthetic placement of the incoming stream (e.g. a receive buffer).
INPUT_REGION_BASE = 0x60_0000_0000
_VALUE_REGION = 0x0_0000_0000
_REF_REGION = 0x1_0000_0000
_BITMAP_REGION = 0x2_0000_0000

_LM_CHUNK_NS = 1.0  # unpack + popcount of one 8-bit chunk
_BM_DISPATCH_NS = 1.0  # block-manager retrieval + dispatch
_RECONSTRUCT_NS = 9.0  # scan 8 slots + issue write
_PREFETCH_DEPTH = 8  # outstanding 64 B lines per stream prefetcher


@dataclass
class BlockDescriptor:
    """Input requirements of one 64 B output block."""

    value_slots: int  # zeros in the 8-bit bitmap chunk
    reference_slots: int  # ones in the chunk
    has_header: bool  # block contains an object's class-ID slot
    reference_bytes: int  # packed reference-array bytes this block consumes


@dataclass
class DUWorkload:
    """Stream-side description of one deserialization operation."""

    image_bytes: int
    blocks: List[BlockDescriptor]
    value_array_bytes: int
    reference_array_bytes: int
    bitmap_bytes: int

    @classmethod
    def from_stream_sections(cls, sections) -> "DUWorkload":
        """Build block descriptors from decoded Cereal stream sections.

        ``sections`` is a :class:`repro.formats.cereal_format.CerealStreamSections`.
        Flattens the per-object bitmaps into the image's slot sequence and
        slices it into 8-slot blocks, tracking exactly how many values and
        packed reference bytes each block consumes.
        """
        bitmaps = sections.layout_bitmaps()
        references = sections.reference_values()

        flat_bits: List[int] = []
        header_slots: List[int] = []  # absolute slot index of each klass slot
        slot_cursor = 0
        for bitmap in bitmaps:
            header_slots.append(slot_cursor + 1)  # klass slot is slot 1
            flat_bits.extend(bitmap)
            slot_cursor += len(bitmap)

        if sections.packed:
            ref_sizes = [
                (significant_bits(value) + 1 + 7) // 8 for value in references
            ]
        else:
            ref_sizes = [8] * len(references)  # baseline: raw 8 B offsets

        blocks: List[BlockDescriptor] = []
        header_set = set(header_slots)
        ref_index = 0
        for block_start in range(0, len(flat_bits), 8):
            chunk = flat_bits[block_start : block_start + 8]
            ones = sum(chunk)
            ref_bytes = sum(ref_sizes[ref_index : ref_index + ones])
            ref_index += ones
            blocks.append(
                BlockDescriptor(
                    value_slots=len(chunk) - ones,
                    reference_slots=ones,
                    has_header=any(
                        (block_start + i) in header_set for i in range(len(chunk))
                    ),
                    reference_bytes=ref_bytes,
                )
            )
        if sections.packed:
            reference_array_bytes = (
                len(sections.references.data) + len(sections.references.end_map)
            )
            bitmap_bytes = (
                len(sections.bitmaps.data) + len(sections.bitmaps.end_map)
            )
        else:
            reference_array_bytes = len(references) * 8
            bitmap_bytes = sum(8 + (len(b) + 7) // 8 for b in bitmaps)
        return cls(
            image_bytes=sections.graph_total_bytes,
            blocks=blocks,
            value_array_bytes=len(sections.value_words) * 8,
            reference_array_bytes=reference_array_bytes,
            bitmap_bytes=bitmap_bytes,
        )


@dataclass
class DUResult:
    """Timing and traffic of one deserialization operation on one DU."""

    start_ns: float
    finish_ns: float
    blocks: int
    image_bytes_written: int
    stream_bytes_read: int

    @property
    def elapsed_ns(self) -> float:
        return self.finish_ns - self.start_ns


class _StreamPrefetcher:
    """Eager sequential loader with a bounded outstanding-line window.

    Models the layout-bitmap / value-array / reference-array loaders: each
    keeps an internal buffer and issues a new 64 B load whenever a slot
    frees, so the stream arrives at DRAM-bandwidth rate with the zero-load
    latency as a pipeline fill cost.
    """

    def __init__(
        self,
        mai: MemoryAccessInterface,
        base: int,
        length: int,
        start_ns: float,
        depth: int = _PREFETCH_DEPTH,
    ):
        self.mai = mai
        self.base = base
        self.length = length
        self.depth = depth
        self._completions: List[float] = []
        self._issued = 0
        self._start_ns = start_ns

    def _issue_next(self) -> None:
        offset = self._issued * 64
        if offset >= self.length:
            raise SimulationError("prefetcher ran past its stream")
        window_gate = (
            self._completions[self._issued - self.depth]
            if self._issued >= self.depth
            else self._start_ns
        )
        done = self.mai.read(window_gate, self.base + offset, min(64, self.length - offset))
        self._completions.append(done)
        self._issued += 1

    def available_at(self, byte_position: int) -> float:
        """Time the byte *before* ``byte_position`` has arrived (0 => start)."""
        if byte_position <= 0 or self.length == 0:
            return self._start_ns
        byte_position = min(byte_position, self.length)
        line = (byte_position - 1) // 64
        while self._issued <= line:
            self._issue_next()
        return self._completions[line]


class DeserializationUnit:
    """Cycle-accounted model of one DU."""

    def __init__(
        self,
        mai: MemoryAccessInterface,
        class_id_table: ClassIDTable,
        config: Optional[CerealConfig] = None,
        unit_id: int = 0,
    ):
        self.mai = mai
        self.class_id_table = class_id_table
        self.config = config or CerealConfig()
        self.unit_id = unit_id

    def run(
        self,
        workload: DUWorkload,
        destination_base: int,
        start_ns: float = 0.0,
        input_base: int = INPUT_REGION_BASE,
    ) -> DUResult:
        """Simulate deserializing ``workload`` into memory at ``destination_base``."""
        pipelined = self.config.pipelined
        reconstructors = (
            self.config.block_reconstructors_per_du if pipelined else 1
        )
        depth = self.config.du_prefetch_depth if pipelined else 1

        bitmap_stream = _StreamPrefetcher(
            self.mai, input_base + _BITMAP_REGION, workload.bitmap_bytes,
            start_ns, depth,
        )
        value_stream = _StreamPrefetcher(
            self.mai, input_base + _VALUE_REGION, workload.value_array_bytes,
            start_ns, depth,
        )
        ref_stream = _StreamPrefetcher(
            self.mai, input_base + _REF_REGION, workload.reference_array_bytes,
            start_ns, depth,
        )

        lm_free = start_ns
        bm_free = start_ns
        reconstructor_free = [start_ns] * reconstructors

        bitmap_pos = 0
        value_pos = 0
        ref_pos = 0
        finish = start_ns

        for index, block in enumerate(workload.blocks):
            # Layout manager: the packed bitmap for 8 slots is ~1 byte + its
            # end-map share; consume proportionally.
            bitmap_pos += 1
            lm_ready = bitmap_stream.available_at(
                min(bitmap_pos, workload.bitmap_bytes)
            )
            lm_time = max(lm_free, lm_ready) + _LM_CHUNK_NS
            lm_free = lm_time

            # Block manager: needs the block's values and references.
            value_pos += block.value_slots * 8
            ref_pos += block.reference_bytes
            bm_ready = max(
                value_stream.available_at(value_pos),
                ref_stream.available_at(ref_pos),
            )
            bm_time = max(bm_free, lm_time, bm_ready) + _BM_DISPATCH_NS
            bm_free = bm_time

            # Block reconstructor: earliest-free of the pool.
            slot = min(range(reconstructors), key=lambda k: reconstructor_free[k])
            rec_start = max(bm_time, reconstructor_free[slot])
            rec_done = rec_start + _RECONSTRUCT_NS
            if block.has_header:
                self.class_id_table.lookups += 1
                rec_done += 1.0
            self.mai.write(rec_done, destination_base + index * 64, 64)
            reconstructor_free[slot] = rec_done
            finish = max(finish, rec_done)

            if not pipelined:
                # Vanilla: the whole per-block chain serializes.
                lm_free = bm_free = rec_done
                reconstructor_free = [rec_done]

        finish = self.mai.drain(finish)
        stream_bytes = (
            workload.bitmap_bytes
            + workload.value_array_bytes
            + workload.reference_array_bytes
        )
        return DUResult(
            start_ns=start_ns,
            finish_ns=finish,
            blocks=len(workload.blocks),
            image_bytes_written=len(workload.blocks) * 64,
            stream_bytes_read=stream_bytes,
        )
