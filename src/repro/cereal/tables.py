"""Hardware type-translation tables (paper Sections V-B, V-C, V-E).

During serialization the object handler translates each header's *klass
address* to a compact *class ID* by a lookup in the **Klass Pointer Table**,
a 4 KB content-addressable memory. During deserialization the block
reconstructor translates class IDs back to klass addresses through the
**Class ID Table**, a 2 KB directly-indexed SRAM. Both are populated by the
``RegisterClass`` software API and bound the number of serializable types to
4K entries (Section V-E).
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import CapacityError, SimulationError

DEFAULT_MAX_TYPES = 4096
LOOKUP_CYCLES = 1


class KlassPointerTable:
    """CAM mapping klass (metaspace) addresses to class IDs."""

    def __init__(self, max_entries: int = DEFAULT_MAX_TYPES):
        if max_entries <= 0:
            raise SimulationError("max_entries must be positive")
        self.max_entries = max_entries
        self._id_by_address: Dict[int, int] = {}
        self.lookups = 0

    def install(self, klass_address: int, class_id: int) -> None:
        """RegisterClass: add a klass-address -> class-ID entry."""
        if klass_address in self._id_by_address:
            if self._id_by_address[klass_address] != class_id:
                raise SimulationError(
                    f"klass address {klass_address:#x} re-registered with a "
                    f"different class ID"
                )
            return
        if len(self._id_by_address) >= self.max_entries:
            raise CapacityError(
                f"Klass Pointer Table full ({self.max_entries} entries)"
            )
        self._id_by_address[klass_address] = class_id

    def lookup(self, klass_address: int) -> int:
        """Single-cycle CAM match; raises if the type was never registered."""
        self.lookups += 1
        try:
            return self._id_by_address[klass_address]
        except KeyError:
            raise CapacityError(
                f"klass address {klass_address:#x} not present in the Klass "
                f"Pointer Table; RegisterClass was not called for this type"
            ) from None

    def __len__(self) -> int:
        return len(self._id_by_address)


class ClassIDTable:
    """SRAM mapping class IDs to klass (metaspace) addresses."""

    def __init__(self, max_entries: int = DEFAULT_MAX_TYPES):
        if max_entries <= 0:
            raise SimulationError("max_entries must be positive")
        self.max_entries = max_entries
        self._addresses: List[int] = []
        self.lookups = 0

    def install(self, class_id: int, klass_address: int) -> None:
        """RegisterClass: entries must be installed in dense ID order."""
        if class_id >= self.max_entries:
            raise CapacityError(
                f"Class ID Table full ({self.max_entries} entries)"
            )
        if class_id == len(self._addresses):
            self._addresses.append(klass_address)
        elif class_id < len(self._addresses):
            if self._addresses[class_id] != klass_address:
                raise SimulationError(
                    f"class ID {class_id} re-registered with a different "
                    f"klass address"
                )
        else:
            raise SimulationError(
                f"class IDs must be installed densely; got {class_id} with "
                f"{len(self._addresses)} entries present"
            )

    def lookup(self, class_id: int) -> int:
        """Single-cycle SRAM read; raises for unknown IDs."""
        self.lookups += 1
        if not 0 <= class_id < len(self._addresses):
            raise CapacityError(
                f"class ID {class_id} not present in the Class ID Table"
            )
        return self._addresses[class_id]

    def __len__(self) -> int:
        return len(self._addresses)
