"""Single-cycle popcount: the layout manager's 0/1 counter.

Paper Section V-C: the layout manager "counts the number of 0s and 1s in a
single cycle" for each 8-bit layout-bitmap chunk. A single-cycle count of a
small word is a classic adder tree: pair up bits, add, repeat — depth
log2(width), a handful of small adders. This model evaluates the tree
level by level so tests can check both the result and the logic depth that
makes "single cycle" credible at the accelerator's 1 GHz.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.common.bitstream import popcount_word
from repro.common.errors import SimulationError


class PopcountTree:
    """Adder-tree population count over a fixed input width."""

    def __init__(self, width: int = 8):
        if width <= 0 or width & (width - 1):
            raise SimulationError("popcount width must be a power of two")
        self.width = width

    @property
    def depth(self) -> int:
        """Adder levels between inputs and the final sum."""
        return int(math.log2(self.width))

    def levels(self, bits: Sequence[int]) -> List[List[int]]:
        """All intermediate partial sums, inputs first, final sum last."""
        if len(bits) != self.width:
            raise SimulationError(
                f"expected {self.width} bits, got {len(bits)}"
            )
        if any(bit not in (0, 1) for bit in bits):
            raise SimulationError("popcount inputs must be 0/1")
        levels = [list(bits)]
        current = list(bits)
        while len(current) > 1:
            current = [
                current[i] + current[i + 1] for i in range(0, len(current), 2)
            ]
            levels.append(current)
        return levels

    def count(self, bits: Sequence[int]) -> Tuple[int, int]:
        """(ones, zeros) of the chunk — what the LM hands the block manager.

        Numerically identical to ``levels(bits)[-1][0]`` (the adder tree is
        exact), computed directly; :meth:`levels` remains the structural
        probe for the logic-depth argument.
        """
        if len(bits) != self.width:
            raise SimulationError(
                f"expected {self.width} bits, got {len(bits)}"
            )
        ones = 0
        for bit in bits:
            if bit not in (0, 1):
                raise SimulationError("popcount inputs must be 0/1")
            ones += bit
        return ones, self.width - ones

    def count_byte(self, value: int) -> Tuple[int, int]:
        """Count over a word-encoded chunk (MSB first) — single popcount op."""
        if not 0 <= value < (1 << self.width):
            raise SimulationError(f"value out of {self.width}-bit range")
        ones = popcount_word(value)
        return ones, self.width - ones
