"""Packing/unpacking datapaths (reference array writer, DU unpackers).

These model, cycle by cycle, the hardware that implements the Section IV-B
object packing scheme:

* **pack** — per item: a priority encoder finds the most significant set
  bit (giving the significant-bit count in one cycle), a barrel shifter
  appends ``significant bits + end bit`` into a bit accumulator, and the
  aligner zero-pads to the next byte boundary, emitting bytes and setting
  the end-map bit of each item's final byte;
* **unpack** — per item: the end-map scanner finds the item's final byte,
  a trailing-one detector locates the end bit inside the item's buckets,
  and the payload bits before it are the recovered value/bitmap.

Both directions process **one item per cycle** (the rate the SU's
reference array writer and the DU's unpackers are charged in the timing
models), and both are bit-exact against :mod:`repro.formats.packing`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.errors import SimulationError
from repro.formats.packing import PackedArray


class _BitAccumulator:
    """The shift-register + byte aligner shared by both packers."""

    def __init__(self) -> None:
        self.data = bytearray()
        self.end_map_positions: List[int] = []
        self._acc = 0
        self._acc_bits = 0

    def append_item(self, bits: Sequence[int]) -> None:
        """Append an item's payload bits + end bit, byte-aligned."""
        for bit in bits:
            self._acc = (self._acc << 1) | bit
            self._acc_bits += 1
        # End bit.
        self._acc = (self._acc << 1) | 1
        self._acc_bits += 1
        # Zero-pad to the byte boundary (the aligner).
        padding = (-self._acc_bits) % 8
        self._acc <<= padding
        self._acc_bits += padding
        while self._acc_bits >= 8:
            shift = self._acc_bits - 8
            self.data.append((self._acc >> shift) & 0xFF)
            self._acc &= (1 << shift) - 1
            self._acc_bits -= 8
        self.end_map_positions.append(len(self.data) - 1)

    def result(self, item_count: int) -> PackedArray:
        assert self._acc_bits == 0  # items are always byte-aligned
        end_map_bits = [0] * len(self.data)
        for position in self.end_map_positions:
            end_map_bits[position] = 1
        end_map = bytearray()
        for start in range(0, len(end_map_bits), 8):
            byte = 0
            for offset, bit in enumerate(end_map_bits[start : start + 8]):
                byte |= bit << (7 - offset)
            end_map.append(byte)
        return PackedArray(
            data=bytes(self.data), end_map=bytes(end_map), item_count=item_count
        )


def priority_encode(value: int) -> int:
    """Position of the most significant set bit + 1 (0 for value 0).

    The single-cycle leading-zero counter in front of the barrel shifter.
    """
    if value < 0:
        raise SimulationError("priority encoder input must be non-negative")
    return value.bit_length()


class PackerDatapath:
    """The reference array writer's packing pipeline: one item per cycle."""

    def __init__(self) -> None:
        self._accumulator = _BitAccumulator()
        self._items = 0
        self.cycles = 0

    def push(self, value: int) -> None:
        """Pack one relative-address item (a single pipeline beat)."""
        if value < 0:
            raise SimulationError("packed values must be non-negative")
        width = max(1, priority_encode(value))
        bits = [(value >> (width - 1 - i)) & 1 for i in range(width)]
        self._accumulator.append_item(bits)
        self._items += 1
        self.cycles += 1

    def result(self) -> PackedArray:
        return self._accumulator.result(self._items)


class BitmapPackerDatapath:
    """The OMM's layout-bitmap packer: 64 bitmap bits per cycle."""

    BITS_PER_CYCLE = 64

    def __init__(self) -> None:
        self._accumulator = _BitAccumulator()
        self._items = 0
        self.cycles = 0

    def push_bitmap(self, bits: Sequence[int]) -> None:
        if not bits:
            raise SimulationError("layout bitmap must be non-empty")
        if any(bit not in (0, 1) for bit in bits):
            raise SimulationError("layout bitmap must contain only 0/1")
        self._accumulator.append_item(list(bits))
        self._items += 1
        self.cycles += (len(bits) + self.BITS_PER_CYCLE - 1) // self.BITS_PER_CYCLE

    def result(self) -> PackedArray:
        return self._accumulator.result(self._items)


class UnpackerDatapath:
    """The DU's custom unpacking module: one item recovered per cycle."""

    def __init__(self, packed: PackedArray):
        self.packed = packed
        self._byte_cursor = 0
        self._emitted = 0
        self.cycles = 0

    def _end_map_bit(self, byte_index: int) -> int:
        byte = self.packed.end_map[byte_index // 8]
        return (byte >> (7 - byte_index % 8)) & 1

    def next_item_bits(self) -> Optional[List[int]]:
        """Recover the next item's payload bits; None when drained."""
        if self._emitted >= self.packed.item_count:
            return None
        # End-map scanner: advance to this item's final byte.
        start = self._byte_cursor
        end = start
        while end < len(self.packed.data) and not self._end_map_bit(end):
            end += 1
        if end >= len(self.packed.data):
            raise SimulationError("end map exhausted before item boundary")
        bucket_bits: List[int] = []
        for byte in self.packed.data[start : end + 1]:
            bucket_bits.extend((byte >> (7 - i)) & 1 for i in range(8))
        # Trailing-one detector: the last set bit is the end bit.
        last_one = -1
        for position, bit in enumerate(bucket_bits):
            if bit:
                last_one = position
        if last_one < 0:
            raise SimulationError("item buckets contain no end bit")
        self._byte_cursor = end + 1
        self._emitted += 1
        self.cycles += 1
        return bucket_bits[:last_one]

    def next_value(self) -> Optional[int]:
        """Recover the next numeric item (reference relative address)."""
        bits = self.next_item_bits()
        if bits is None:
            return None
        value = 0
        for bit in bits:
            value = (value << 1) | bit
        return value

    def drain_values(self) -> List[int]:
        out = []
        while True:
            value = self.next_value()
            if value is None:
                return out
            out.append(value)

    def drain_bitmaps(self) -> List[List[int]]:
        out = []
        while True:
            bits = self.next_item_bits()
            if bits is None:
                return out
            out.append(bits)
