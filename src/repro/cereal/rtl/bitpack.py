"""Packing/unpacking datapaths (reference array writer, DU unpackers).

These model, cycle by cycle, the hardware that implements the Section IV-B
object packing scheme:

* **pack** — per item: a priority encoder finds the most significant set
  bit (giving the significant-bit count in one cycle), a barrel shifter
  appends ``significant bits + end bit`` into a bit accumulator, and the
  aligner zero-pads to the next byte boundary, emitting bytes and setting
  the end-map bit of each item's final byte;
* **unpack** — per item: the end-map scanner finds the item's final byte,
  a trailing-one detector locates the end bit inside the item's buckets,
  and the payload bits before it are the recovered value/bitmap.

Both directions process **one item per cycle** (the rate the SU's
reference array writer and the DU's unpackers are charged in the timing
models), and both are bit-exact against :mod:`repro.formats.packing`.

The simulation itself runs the word-level kernels — an item is one barrel
shift (``int`` shift/or) plus one byte emit (``int.to_bytes``), mirroring
what the modeled datapath does in a single beat. Cycle accounting is
unchanged from the per-bit model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.common.bitstream import bits_to_word, trailing_zeros, word_to_bits
from repro.common.errors import SimulationError
from repro.formats.packing import PackedArray


class _BitAccumulator:
    """The shift-register + byte aligner shared by both packers."""

    def __init__(self) -> None:
        self.data = bytearray()
        self.end_map_positions: List[int] = []

    def append_word(self, value: int, width: int) -> None:
        """Append an item (``width`` payload bits) + end bit, byte-aligned.

        One barrel-shift beat: payload, end bit, and alignment padding are
        composed in a single word and emitted as whole bytes.
        """
        nbits = width + 1
        nbytes = (nbits + 7) >> 3
        self.data += (((value << 1) | 1) << ((nbytes << 3) - nbits)).to_bytes(
            nbytes, "big"
        )
        self.end_map_positions.append(len(self.data) - 1)

    def append_item(self, bits: Sequence[int]) -> None:
        """Append an item given as a bit list (legacy probe surface)."""
        value, width = bits_to_word(bits)
        self.append_word(value, width)

    def result(self, item_count: int) -> PackedArray:
        end_map = bytearray((len(self.data) + 7) >> 3)
        for position in self.end_map_positions:
            end_map[position >> 3] |= 0x80 >> (position & 7)
        return PackedArray(
            data=bytes(self.data), end_map=bytes(end_map), item_count=item_count
        )


def priority_encode(value: int) -> int:
    """Position of the most significant set bit + 1 (0 for value 0).

    The single-cycle leading-zero counter in front of the barrel shifter.
    """
    if value < 0:
        raise SimulationError("priority encoder input must be non-negative")
    return value.bit_length()


class PackerDatapath:
    """The reference array writer's packing pipeline: one item per cycle."""

    def __init__(self) -> None:
        self._accumulator = _BitAccumulator()
        self._items = 0
        self.cycles = 0

    def push(self, value: int) -> None:
        """Pack one relative-address item (a single pipeline beat)."""
        if value < 0:
            raise SimulationError("packed values must be non-negative")
        width = max(1, priority_encode(value))
        self._accumulator.append_word(value, width)
        self._items += 1
        self.cycles += 1

    def result(self) -> PackedArray:
        return self._accumulator.result(self._items)


class BitmapPackerDatapath:
    """The OMM's layout-bitmap packer: 64 bitmap bits per cycle."""

    BITS_PER_CYCLE = 64

    def __init__(self) -> None:
        self._accumulator = _BitAccumulator()
        self._items = 0
        self.cycles = 0

    def push_bitmap_word(self, value: int, width: int) -> None:
        """Pack one bitmap given as an MSB-first ``(word, width)`` pair."""
        if width < 1:
            raise SimulationError("layout bitmap must be non-empty")
        if value < 0 or value.bit_length() > width:
            raise SimulationError("layout bitmap word out of range")
        self._accumulator.append_word(value, width)
        self._items += 1
        self.cycles += (width + self.BITS_PER_CYCLE - 1) // self.BITS_PER_CYCLE

    def push_bitmap(self, bits: Sequence[int]) -> None:
        if not bits:
            raise SimulationError("layout bitmap must be non-empty")
        try:
            value, width = bits_to_word(bits)
        except ValueError:
            raise SimulationError(
                "layout bitmap must contain only 0/1"
            ) from None
        self.push_bitmap_word(value, width)

    def result(self) -> PackedArray:
        return self._accumulator.result(self._items)


class UnpackerDatapath:
    """The DU's custom unpacking module: one item recovered per cycle."""

    def __init__(self, packed: PackedArray):
        self.packed = packed
        self._byte_cursor = 0
        self._emitted = 0
        self.cycles = 0
        # End-map scanner state: every set bit, in increasing position,
        # extracted word-at-a-time instead of probing byte by byte.
        data_len = len(packed.data)
        end_word = int.from_bytes(packed.end_map, "big")
        total = len(packed.end_map) * 8
        positions: List[int] = []
        while end_word:
            msb = end_word.bit_length() - 1
            position = total - 1 - msb
            if position >= data_len:
                break  # end bits beyond the data are never reached
            positions.append(position)
            end_word &= (1 << msb) - 1
        self._end_positions = positions
        self._end_index = 0

    def next_item_word(self) -> Optional[Tuple[int, int]]:
        """Recover the next item as ``(payload, width)``; None when drained."""
        if self._emitted >= self.packed.item_count:
            return None
        # End-map scanner: advance to this item's final byte.
        if self._end_index >= len(self._end_positions):
            raise SimulationError("end map exhausted before item boundary")
        start = self._byte_cursor
        end = self._end_positions[self._end_index]
        word = int.from_bytes(self.packed.data[start : end + 1], "big")
        # Trailing-one detector: the last set bit is the end bit.
        if word == 0:
            raise SimulationError("item buckets contain no end bit")
        pad = trailing_zeros(word)
        width = (end + 1 - start) * 8 - pad - 1
        self._end_index += 1
        self._byte_cursor = end + 1
        self._emitted += 1
        self.cycles += 1
        return word >> (pad + 1), width

    def next_item_bits(self) -> Optional[List[int]]:
        """Recover the next item's payload bits; None when drained."""
        item = self.next_item_word()
        if item is None:
            return None
        return word_to_bits(item[0], item[1])

    def next_value(self) -> Optional[int]:
        """Recover the next numeric item (reference relative address)."""
        item = self.next_item_word()
        if item is None:
            return None
        return item[0]

    def drain_values(self) -> List[int]:
        out = []
        while True:
            value = self.next_value()
            if value is None:
                return out
            out.append(value)

    def drain_bitmaps(self) -> List[List[int]]:
        out = []
        while True:
            bits = self.next_item_bits()
            if bits is None:
                return out
            out.append(bits)
