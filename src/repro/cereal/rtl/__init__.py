"""Register-transfer-level datapath models (the paper's Chisel RTL).

The cycle models in :mod:`repro.cereal.su` and :mod:`repro.cereal.du` charge
fixed per-item costs — one packed reference per cycle in the reference
array writer, one 8-bit layout chunk per cycle in the layout manager, a
single-cycle 0/1 count. This package models the *datapaths* that make those
costs plausible, at the level the paper's synthesizable Chisel describes:

* :class:`~repro.cereal.rtl.bitpack.PackerDatapath` — the reference array
  writer's pipeline: a leading-zero counter (priority encoder), a barrel
  shifter appending significant bits + end bit into a bit accumulator, and
  a byte aligner that also maintains the end map. One item per cycle.
* :class:`~repro.cereal.rtl.bitpack.BitmapPackerDatapath` — the object
  metadata manager's bitmap packer: 64 bitmap bits per cycle through the
  same aligner.
* :class:`~repro.cereal.rtl.bitpack.UnpackerDatapath` — the DU's custom
  unpacking module: an end-map scanner plus trailing-one detector that
  recovers one item per cycle from the packed byte stream.
* :class:`~repro.cereal.rtl.popcount.PopcountTree` — the layout manager's
  single-cycle ones/zeros counter, an adder tree of depth log2(width).

All datapaths are bit-exact against the functional encoders in
:mod:`repro.formats.packing` (property-tested), and their cycle counts are
asserted to match the constants the timing models charge.
"""

from repro.cereal.rtl.bitpack import (
    BitmapPackerDatapath,
    PackerDatapath,
    UnpackerDatapath,
)
from repro.cereal.rtl.popcount import PopcountTree

__all__ = [
    "PackerDatapath",
    "BitmapPackerDatapath",
    "UnpackerDatapath",
    "PopcountTree",
]
