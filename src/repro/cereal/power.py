"""Area, power, and energy model (paper Section VI-E, Table V).

The paper synthesizes the Chisel RTL with a TSMC 40 nm library; per-module
area and average power are published in Table V. We reproduce those numbers
as named constants — they are *inputs* to this model, not re-derived — and
recompute the totals from the per-unit values, exactly as the table does.

Energy (Figure 17) is average power times modelled busy time:

* Cereal S/D energy = (relevant unit-pool power + shared-structure power)
  x operation time from the cycle model;
* CPU (Java S/D, Kryo) energy = an active-power share of the host's 140 W
  TDP x the CPU-modelled S/D time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.config import CerealConfig, HostCPUConfig


@dataclass(frozen=True)
class ModuleSpec:
    """One Table V row: per-instance area/power and the instance count."""

    name: str
    area_mm2: float
    power_mw: float
    count: int

    @property
    def total_area_mm2(self) -> float:
        return self.area_mm2 * self.count

    @property
    def total_power_mw(self) -> float:
        return self.power_mw * self.count


# Table V, verbatim per-unit values (40 nm synthesis results).
CEREAL_MODULE_SPECS: Dict[str, ModuleSpec] = {
    "header_manager": ModuleSpec("Header manager", 0.003, 1.3, 8),
    "reference_array_writer": ModuleSpec("Reference array writer", 0.013, 5.8, 8),
    "object_metadata_manager": ModuleSpec("Object metadata manager", 0.014, 7.6, 8),
    "object_handler": ModuleSpec("Object handler", 0.028, 18.4, 8),
    "layout_manager": ModuleSpec("Layout manager", 0.020, 10.9, 8),
    "block_manager": ModuleSpec("Block manager", 0.217, 81.1, 8),
    "block_reconstructor": ModuleSpec("Block reconstructor", 0.011, 6.9, 32),
    "tlb": ModuleSpec("TLB", 0.282, 2.7, 1),
    "mai": ModuleSpec("MAI", 0.161, 0.8, 1),
    "class_id_table": ModuleSpec("Class ID Table (2KB)", 0.230, 1.2, 1),
    "klass_pointer_table": ModuleSpec("Klass Pointer Table (4KB)", 0.472, 5.3, 1),
}

_SERIALIZER_MODULES = (
    "header_manager",
    "reference_array_writer",
    "object_metadata_manager",
    "object_handler",
)
_DESERIALIZER_MODULES = (
    "layout_manager",
    "block_manager",
    "block_reconstructor",
)
_SHARED_MODULES = ("tlb", "mai", "class_id_table", "klass_pointer_table")

# Fraction of TDP a core-parallel software serializer draws while active.
# S/D is low-IPC, memory-bound code: well below the all-core turbo power.
CPU_ACTIVE_POWER_FRACTION = 1.0


def _scale_count(key: str, config: CerealConfig) -> int:
    """Instance count of module ``key`` for a given accelerator config."""
    per_unit = {
        "header_manager": config.num_serializer_units,
        "reference_array_writer": config.num_serializer_units,
        "object_metadata_manager": config.num_serializer_units,
        "object_handler": config.num_serializer_units,
        "layout_manager": config.num_deserializer_units,
        "block_manager": config.num_deserializer_units,
        "block_reconstructor": config.num_deserializer_units
        * config.block_reconstructors_per_du,
    }
    return per_unit.get(key, CEREAL_MODULE_SPECS[key].count)


def cereal_area_mm2(config: CerealConfig | None = None) -> float:
    """Total accelerator area; 3.857 mm^2 for the default configuration."""
    config = config or CerealConfig()
    return sum(
        spec.area_mm2 * _scale_count(key, config)
        for key, spec in CEREAL_MODULE_SPECS.items()
    )


def cereal_average_power_watts(config: CerealConfig | None = None) -> float:
    """Total average power; ~1.232 W for the default configuration."""
    config = config or CerealConfig()
    total_mw = sum(
        spec.power_mw * _scale_count(key, config)
        for key, spec in CEREAL_MODULE_SPECS.items()
    )
    return total_mw / 1000.0


def serializer_power_watts(config: CerealConfig | None = None) -> float:
    """SU pool power plus shared structures (used for serialize energy)."""
    config = config or CerealConfig()
    modules = _SERIALIZER_MODULES + _SHARED_MODULES
    total_mw = sum(
        CEREAL_MODULE_SPECS[key].power_mw * _scale_count(key, config)
        for key in modules
    )
    return total_mw / 1000.0


def deserializer_power_watts(config: CerealConfig | None = None) -> float:
    """DU pool power plus shared structures (used for deserialize energy)."""
    config = config or CerealConfig()
    modules = _DESERIALIZER_MODULES + _SHARED_MODULES
    total_mw = sum(
        CEREAL_MODULE_SPECS[key].power_mw * _scale_count(key, config)
        for key in modules
    )
    return total_mw / 1000.0


def cereal_energy_joules(
    elapsed_seconds: float,
    operation: str = "serialize",
    config: CerealConfig | None = None,
) -> float:
    """Energy of one Cereal operation: pool average power x elapsed time."""
    if elapsed_seconds < 0:
        raise ValueError("elapsed time must be non-negative")
    if operation == "serialize":
        power = serializer_power_watts(config)
    elif operation == "deserialize":
        power = deserializer_power_watts(config)
    else:
        raise ValueError(f"unknown operation {operation!r}")
    return power * elapsed_seconds


def cpu_energy_joules(
    elapsed_seconds: float, host: HostCPUConfig | None = None
) -> float:
    """Energy drawn by the host CPU running a software serializer."""
    if elapsed_seconds < 0:
        raise ValueError("elapsed time must be non-negative")
    host = host or HostCPUConfig()
    return host.tdp_watts * CPU_ACTIVE_POWER_FRACTION * elapsed_seconds


def area_power_table(config: CerealConfig | None = None) -> Tuple[list, float, float]:
    """Rows of Table V: (rows, total_area_mm2, total_power_mw).

    Each row is (name, unit_area, unit_power_mw, count, total_area,
    total_power_mw).
    """
    config = config or CerealConfig()
    rows = []
    for key, spec in CEREAL_MODULE_SPECS.items():
        count = _scale_count(key, config)
        rows.append(
            (
                spec.name,
                spec.area_mm2,
                spec.power_mw,
                count,
                spec.area_mm2 * count,
                spec.power_mw * count,
            )
        )
    return rows, cereal_area_mm2(config), cereal_average_power_watts(config) * 1000.0
