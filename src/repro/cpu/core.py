"""Analytical core model: work profile + cache stats -> time.

Why S/D is slow on CPUs (paper Section III): the object-graph walk issues
*dependent* indirect loads, so the core's bounded instruction window and
load-store queue expose only a little memory-level parallelism; random DRAM
misses therefore serialize, IPC collapses toward 1, and bandwidth
utilization stays in single digits. The model captures exactly that:

    cycles = instructions / base_ipc                      (compute)
           + l2_hits  x l2_latency  x overlap_l2          (near misses)
           + l3_hits  x l3_latency  x overlap_l3
           + random_misses x dram_latency_cycles / MLP    (the bottleneck)
           + sequential_bytes bandwidth time              (prefetched streams)

``MLP`` comes from the serializer's work profile (how chained its loads
are), clamped by the core's outstanding-miss limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.config import DRAMConfig, HostCPUConfig
from repro.cpu.cache import CacheStats
from repro.formats.base import WorkProfile

# Fractions of a hit's latency that the OoO window fails to hide.
_L2_EXPOSED = 0.25
_L3_EXPOSED = 0.45
# Per-core streaming bandwidth: next-line prefetchers on one core sustain a
# fraction of the socket peak.
_CORE_STREAM_BANDWIDTH_FRACTION = 0.25


@dataclass
class CPUTimingResult:
    """Modelled perf-counter readings for one software S/D call."""

    time_ns: float
    cycles: float
    instructions: int
    compute_cycles: float
    l2_stall_cycles: float
    l3_stall_cycles: float
    random_miss_cycles: float
    stream_cycles: float
    llc_miss_rate: float
    llc_misses: int
    dram_bytes: int
    bandwidth_utilization: float
    effective_mlp: float

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def time_seconds(self) -> float:
        return self.time_ns * 1e-9


class CPUCostModel:
    """Combines a work profile and cache stats into a timing result."""

    def __init__(
        self,
        host: Optional[HostCPUConfig] = None,
        dram: Optional[DRAMConfig] = None,
    ):
        self.host = host or HostCPUConfig()
        self.dram = dram or DRAMConfig()

    def estimate(
        self, profile: WorkProfile, cache_stats: CacheStats
    ) -> CPUTimingResult:
        host = self.host
        clock_hz = host.clock_ghz * 1e9
        dram_latency_cycles = self.dram.zero_load_latency_ns * host.clock_ghz

        mlp = min(max(profile.mlp, 1.0), float(host.max_outstanding_misses))

        compute = profile.instructions / host.base_ipc
        l2_stalls = cache_stats.l2_hits * host.l2.latency_cycles * _L2_EXPOSED
        l3_stalls = cache_stats.l3_hits * host.l3.latency_cycles * _L3_EXPOSED
        random_stalls = (
            cache_stats.random_misses * dram_latency_cycles / mlp
        )

        line = self.host.l1.line_bytes
        stream_bytes = cache_stats.sequential_misses * line
        core_stream_bw = (
            self.dram.peak_bandwidth_bytes_per_sec * _CORE_STREAM_BANDWIDTH_FRACTION
        )
        stream_cycles = stream_bytes / core_stream_bw * clock_hz

        cycles = compute + l2_stalls + l3_stalls + random_stalls + stream_cycles

        dram_bytes = cache_stats.dram_bytes(line)
        # Physical floor: one core cannot move its DRAM traffic faster than
        # its streaming bandwidth, regardless of how little it computes.
        floor_cycles = dram_bytes / core_stream_bw * clock_hz
        cycles = max(cycles, floor_cycles)
        time_ns = cycles / host.clock_ghz
        if time_ns > 0:
            achieved = dram_bytes / (time_ns * 1e-9)
            utilization = achieved / self.dram.peak_bandwidth_bytes_per_sec
        else:
            utilization = 0.0

        return CPUTimingResult(
            time_ns=time_ns,
            cycles=cycles,
            instructions=profile.instructions,
            compute_cycles=compute,
            l2_stall_cycles=l2_stalls,
            l3_stall_cycles=l3_stalls,
            random_miss_cycles=random_stalls,
            stream_cycles=stream_cycles,
            llc_miss_rate=cache_stats.llc_miss_rate,
            llc_misses=cache_stats.dram_accesses,
            dram_bytes=dram_bytes,
            bandwidth_utilization=min(1.0, utilization),
            effective_mlp=mlp,
        )
