"""Software S/D timing harness.

Runs a serializer *functionally* on the simulated heap while capturing the
real heap memory trace, appends the stream I/O as sequential buffer
accesses, replays everything through the cache hierarchy, and feeds the
result plus the serializer's work profile into the core cost model. The
output mirrors what the paper measures with Linux perf (Figure 3): time,
IPC, LLC miss rate, and DRAM bandwidth utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.config import SystemConfig
from repro.cpu.cache import CacheHierarchy
from repro.cpu.core import CPUCostModel, CPUTimingResult
from repro.formats.base import (
    DeserializationResult,
    SerializationResult,
    SerializedStream,
    Serializer,
)
from repro.jvm.heap import Heap, HeapObject
from repro.memory.trace import MemoryTrace

# The serialized stream lives in a malloc'd buffer far from the heap.
_STREAM_BUFFER_BASE = 0x7000_0000_0000
# Runtime-internal structures (handle tables, reflection caches) live in
# yet another region.
_AUX_REGION_BASE = 0x7100_0000_0000

# Per-serializer MLP (see WorkProfile.mlp): pointer chasers expose ~1 miss,
# bulk copiers stream. Values chosen to land the paper's measured bandwidth
# utilizations (Java 2.7-3.5%, Kryo 4.1-4.5%).
SERIALIZER_MLP = {
    ("java-builtin", "serialize"): 1.25,
    ("java-builtin", "deserialize"): 1.4,
    ("kryo", "serialize"): 1.6,
    ("kryo", "deserialize"): 2.4,
    ("skyway", "serialize"): 4.0,
    ("skyway", "deserialize"): 2.0,
}
_DEFAULT_MLP = 1.5


@dataclass
class SoftwareRunResult:
    """A functional result paired with its modelled CPU timing."""

    timing: CPUTimingResult
    stream: Optional[SerializedStream] = None
    root: Optional[HeapObject] = None


class SoftwarePlatform:
    """Host platform that runs and times software serializers."""

    def __init__(self, system: Optional[SystemConfig] = None):
        self.system = system or SystemConfig()
        self.cost_model = CPUCostModel(self.system.host, self.system.dram)

    # -- internals ------------------------------------------------------------------

    def _with_trace(self, heap: Heap):
        trace = MemoryTrace(keep_accesses=True)
        previous = heap.memory.trace
        heap.memory.trace = trace
        return trace, previous

    def _stream_accesses(self, trace: MemoryTrace, nbytes: int, kind: str) -> None:
        """Append the stream buffer traffic as sequential 64 B accesses."""
        for offset in range(0, nbytes, 64):
            length = min(64, nbytes - offset)
            if kind == "write":
                trace.record_write(_STREAM_BUFFER_BASE + offset, length)
            else:
                trace.record_read(_STREAM_BUFFER_BASE + offset, length)

    def _aux_accesses(self, trace: MemoryTrace, profile) -> None:
        """Synthesize runtime-data-structure traffic (see WorkProfile).

        The handle table / reference resolver grows with the object count;
        accesses into it are hash-distributed, i.e. random over the region.
        """
        count = profile.aux_random_accesses
        if count <= 0:
            return
        entries = max(profile.objects, 1)
        region_bytes = entries * profile.aux_bytes_per_entry
        state = 0x9E3779B97F4A7C15
        for _ in range(count):
            state = (state * 0x5851F42D4C957F2D + 0x14057B7EF767814F) & (2**64 - 1)
            offset = (state >> 16) % max(region_bytes, 64)
            trace.record_read(_AUX_REGION_BASE + (offset & ~0x7), 8)

    def _finish(self, serializer_name: str, op: str, profile, trace: MemoryTrace):
        profile.mlp = SERIALIZER_MLP.get((serializer_name, op), _DEFAULT_MLP)
        self._aux_accesses(trace, profile)
        hierarchy = CacheHierarchy(self.system.host)
        stats = hierarchy.replay(trace.accesses)
        return self.cost_model.estimate(profile, stats)

    # -- public API -----------------------------------------------------------------------

    def run_serialize(
        self, serializer: Serializer, root: HeapObject
    ) -> Tuple[SerializationResult, SoftwareRunResult]:
        heap = root.heap
        trace, previous = self._with_trace(heap)
        try:
            result = serializer.serialize(root)
        finally:
            heap.memory.trace = previous
        self._stream_accesses(trace, result.stream.size_bytes, "write")
        timing = self._finish(serializer.name, "serialize", result.profile, trace)
        return result, SoftwareRunResult(timing=timing, stream=result.stream)

    def run_serialize_chunked(
        self,
        serializer: Serializer,
        root: HeapObject,
        chunk_bytes: int,
        pool=None,
    ):
        """Chunked-encode ``root`` under the same instrumentation as
        :meth:`run_serialize`: the cursor drain happens inside the heap
        trace, the assembled stream gets the same sequential buffer
        accesses, and the summary's work profile feeds the same cost
        model — so the modelled time is identical to the single-shot
        encode (chunking changes *when* bytes leave, not what they cost).

        Returns ``(result, run, chunks)`` where ``chunks`` are the
        payload slices in emission order.
        """
        heap = root.heap
        trace, previous = self._with_trace(heap)
        cursor = serializer.serialize_chunks(root, chunk_bytes, pool=pool)
        chunks = []
        try:
            while True:
                arena = cursor.next_chunk()
                if arena is None:
                    break
                chunks.append(bytes(arena))
                cursor.recycle(arena)
        finally:
            heap.memory.trace = previous
        summary = cursor.summary
        stream = SerializedStream(
            format_name=summary.format_name,
            data=b"".join(chunks),
            sections=dict(summary.sections),
            object_count=summary.object_count,
            graph_bytes=summary.graph_bytes,
        )
        result = SerializationResult(stream=stream, profile=summary.profile)
        self._stream_accesses(trace, stream.size_bytes, "write")
        timing = self._finish(serializer.name, "serialize", result.profile, trace)
        return result, SoftwareRunResult(timing=timing, stream=stream), chunks

    def run_deserialize(
        self, serializer: Serializer, stream: SerializedStream, heap: Heap
    ) -> Tuple[DeserializationResult, SoftwareRunResult]:
        trace, previous = self._with_trace(heap)
        try:
            result = serializer.deserialize(stream, heap)
        finally:
            heap.memory.trace = previous
        self._stream_accesses(trace, stream.size_bytes, "read")
        timing = self._finish(serializer.name, "deserialize", result.profile, trace)
        return result, SoftwareRunResult(timing=timing, root=result.root)

    def round_trip_timings(
        self, serializer: Serializer, root: HeapObject, receiver: Heap
    ) -> Tuple[CPUTimingResult, CPUTimingResult]:
        """Convenience: (serialize timing, deserialize timing)."""
        result, ser_run = self.run_serialize(serializer, root)
        _, deser_run = self.run_deserialize(serializer, result.stream, receiver)
        return ser_run.timing, deser_run.timing
