"""Set-associative cache hierarchy simulator.

Replays a :class:`~repro.memory.trace.MemoryTrace` through L1/L2/L3 (LRU,
inclusive-enough for accounting purposes) and classifies every DRAM miss as
*sequential* (caught by a next-line hardware prefetcher, cheap and
overlappable) or *random* (a demand miss that stalls the bounded
out-of-order window). The split is what lets the core model reproduce the
paper's observation that S/D is dominated by random, dependent misses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.common.config import CacheLevelConfig, HostCPUConfig
from repro.memory.trace import AccessKind, MemoryAccess


@dataclass
class CacheStats:
    """Hit/miss counters for one replay."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    dram_accesses: int = 0
    sequential_misses: int = 0
    random_misses: int = 0
    write_misses: int = 0
    writeback_lines: int = 0

    @property
    def llc_accesses(self) -> int:
        """Accesses that reached the L3 (missed L1 and L2)."""
        return self.l3_hits + self.dram_accesses

    @property
    def llc_miss_rate(self) -> float:
        if not self.llc_accesses:
            return 0.0
        return self.dram_accesses / self.llc_accesses

    @property
    def l1_miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return 1.0 - self.l1_hits / self.accesses

    def dram_bytes(self, line_bytes: int = 64) -> int:
        """Traffic to memory: demand fills plus dirty writebacks."""
        return (self.dram_accesses + self.writeback_lines) * line_bytes


class _SetAssociativeCache:
    """One LRU cache level, tracked at line granularity."""

    def __init__(self, config: CacheLevelConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.associativity
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]

    def access(self, line: int, is_write: bool) -> bool:
        """Touch ``line``; returns True on hit. Misses install the line."""
        index = line % self.num_sets
        ways = self._sets[index]
        if line in ways:
            ways.move_to_end(line)
            if is_write:
                ways[line] = True  # dirty
            return True
        ways[line] = is_write
        if len(ways) > self.ways:
            ways.popitem(last=False)
        return False

    def evicted_dirty(self, line: int) -> bool:
        index = line % self.num_sets
        return self._sets[index].get(line, False)


class _PrefetchClassifier:
    """Next-line-stream detector standing in for the L2 hardware prefetcher."""

    def __init__(self, window: int = 64):
        self.window = window
        self._recent: OrderedDict[int, None] = OrderedDict()

    def is_sequential(self, line: int) -> bool:
        hit = (line - 1) in self._recent or (line - 2) in self._recent
        self._recent[line] = None
        if len(self._recent) > self.window:
            self._recent.popitem(last=False)
        return hit


class CacheHierarchy:
    """L1D + L2 + L3 replayed over line-granular accesses."""

    def __init__(self, host: Optional[HostCPUConfig] = None):
        self.host = host or HostCPUConfig()
        self.l1 = _SetAssociativeCache(self.host.l1)
        self.l2 = _SetAssociativeCache(self.host.l2)
        self.l3 = _SetAssociativeCache(self.host.l3)
        self.line_bytes = self.host.l1.line_bytes
        self.stats = CacheStats()
        self._prefetch = _PrefetchClassifier()

    def access_line(self, line: int, is_write: bool) -> None:
        stats = self.stats
        stats.accesses += 1
        if self.l1.access(line, is_write):
            stats.l1_hits += 1
            return
        if self.l2.access(line, is_write):
            stats.l2_hits += 1
            return
        if self.l3.access(line, is_write):
            stats.l3_hits += 1
            return
        stats.dram_accesses += 1
        if is_write:
            stats.write_misses += 1
            stats.writeback_lines += 1  # allocated line eventually written back
        if self._prefetch.is_sequential(line):
            stats.sequential_misses += 1
        else:
            stats.random_misses += 1

    def replay(self, accesses: Iterable[MemoryAccess]) -> CacheStats:
        """Replay per-line accesses (see ``MemoryTrace.line_accesses``)."""
        line_bytes = self.line_bytes
        for access in accesses:
            first = access.address // line_bytes
            last = (access.address + access.length - 1) // line_bytes
            is_write = access.kind is AccessKind.WRITE
            for line in range(first, last + 1):
                self.access_line(line, is_write)
        return self.stats
