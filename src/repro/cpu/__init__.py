"""Host-CPU cost model for software serializers (paper Section III).

The software serializers run *functionally* on the simulated heap; this
package converts their real memory traces and work profiles into time:

* :mod:`repro.cpu.cache` — a three-level set-associative cache simulator
  with a next-line-prefetch classifier, replayed over the actual trace;
* :mod:`repro.cpu.core` — an analytical core model capturing the limits
  the paper blames for poor S/D performance: bounded instruction window /
  load-store queue ⇒ bounded memory-level parallelism ⇒ serialized DRAM
  misses, low IPC, and single-digit bandwidth utilization;
* :mod:`repro.cpu.harness` — wraps a serializer call with trace capture
  and produces a :class:`~repro.cpu.core.CPUTimingResult` (IPC, LLC miss
  rate, bandwidth utilization, time) mirroring the perf-tool measurements
  of Figure 3.
"""

from repro.cpu.cache import CacheHierarchy, CacheStats
from repro.cpu.core import CPUCostModel, CPUTimingResult
from repro.cpu.harness import SoftwarePlatform, SoftwareRunResult

__all__ = [
    "CacheHierarchy",
    "CacheStats",
    "CPUCostModel",
    "CPUTimingResult",
    "SoftwarePlatform",
    "SoftwareRunResult",
]
