"""Figure 2 — Runtime breakdown of the six Spark applications.

Paper: with Java S/D, S/D averages 39.5% of execution time (up to 90.9%
for SVM); with Kryo, 28.3% (up to 83.4% for SVM).
"""

from repro.analysis import ReportTable


def _breakdown_table(title, results, results_dir, filename):
    table = ReportTable(
        title, ["App", "Compute %", "GC %", "IO %", "S/D %", "Total (ms)"]
    )
    fractions = []
    for app, result in results.items():
        f = result.breakdown.fractions()
        fractions.append(f["sd"])
        table.add_row(
            app,
            f"{f['compute'] * 100:.1f}",
            f"{f['gc'] * 100:.1f}",
            f"{f['io'] * 100:.1f}",
            f"{f['sd'] * 100:.1f}",
            f"{result.total_ns / 1e6:.1f}",
        )
    average = sum(fractions) / len(fractions)
    table.add_note(f"average S/D share: {average * 100:.1f}%")
    table.show()
    table.save(results_dir, filename)
    return fractions, average


def test_fig02a_java_breakdown(benchmark, spark_results, results_dir):
    java = spark_results.results["java-builtin"]
    fractions, average = benchmark.pedantic(
        _breakdown_table,
        args=("Figure 2(a): runtime breakdown, Java S/D", java, results_dir,
              "fig02a_breakdown_java"),
        rounds=1,
        iterations=1,
    )
    # Paper: average 39.5%, max 90.9% (SVM).
    assert 0.25 < average < 0.55
    svm_fraction = java["svm"].breakdown.sd_fraction
    assert svm_fraction == max(fractions)
    assert svm_fraction > 0.75


def test_fig02b_kryo_breakdown(benchmark, spark_results, results_dir):
    kryo = spark_results.results["kryo"]
    fractions, average = benchmark.pedantic(
        _breakdown_table,
        args=("Figure 2(b): runtime breakdown, Kryo", kryo, results_dir,
              "fig02b_breakdown_kryo"),
        rounds=1,
        iterations=1,
    )
    # Paper: average 28.3%, max 83.4% (SVM).
    assert 0.15 < average < 0.45
    assert kryo["svm"].breakdown.sd_fraction == max(fractions)
    assert kryo["svm"].breakdown.sd_fraction > 0.6


def test_fig02_kryo_reduces_sd_share(benchmark, spark_results, results_dir):
    java = spark_results.results["java-builtin"]
    kryo = spark_results.results["kryo"]

    def shares():
        java_avg = sum(r.breakdown.sd_fraction for r in java.values()) / len(java)
        kryo_avg = sum(r.breakdown.sd_fraction for r in kryo.values()) / len(kryo)
        return java_avg, kryo_avg

    java_avg, kryo_avg = benchmark(shares)
    assert kryo_avg < java_avg
