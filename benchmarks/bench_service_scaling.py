"""Service scaling sweep: QPS x shard count x batch deadline.

Drives the event-loop serialization service (:mod:`repro.service`) with a
seeded open-loop Poisson workload and sweeps offered load (as fractions of
one shard's serialize-pool capacity), shard count, and the batch
coalescing deadline. Emits the human table plus machine-readable
``BENCH_service.json`` and self-checks three properties of the curves:

(a) with batching disabled, p99 rises monotonically with offered QPS at
    every fixed shard count — and the single-shard series climbs steeply
    once offered load crosses capacity;
(b) at the highest offered QPS, adding shards reduces p99;
(c) at the highest offered QPS on one shard (the saturated regime), a
    batching deadline > 0 beats deadline 0 on goodput: coalescing
    amortizes per-dispatch overhead exactly where it matters.

A small chaos run (accelerator capacity faults + bounded queue) rides
along so shed/degrade counts also land in the JSON trajectory. The chaos
run executes under an enabled tracer and exports ``TRACE_service.json``
(Chrome trace-event format — open it in ``chrome://tracing`` or
https://ui.perfetto.dev): request/queue/execute span trees, batch spans
per shard, and fault instants. Two extra checks gate the export: the file
must validate structurally, and p50/p99 recomputed from the exported
request spans must match the SLO report to within 1 ns.

Run standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_service_scaling.py --smoke

or as part of the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_scaling.py
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Tuple

if __name__ == "__main__":  # allow `python benchmarks/bench_service_scaling.py`
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _emit import emit_json, emit_trace, runtime_snapshot, trace_json_path  # noqa: E402
from repro.analysis import ReportTable  # noqa: E402
from repro.faults import FaultInjector, FaultPolicy  # noqa: E402
from repro.obs import (  # noqa: E402
    Tracer,
    exact_quantile,
    set_tracer,
    validate_chrome_trace,
)
from repro.service import (  # noqa: E402
    AdmissionConfig,
    PoissonWorkload,
    RequestMix,
    SerializationServer,
    ServiceCatalog,
    ServiceConfig,
)

_SEED = 0x5E12
_BATCH_WAIT_NS = 20_000.0
_MONOTONE_TOL = 0.01  # 1% slack for flat low-load plateaus

_RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def _grid(smoke: bool) -> Tuple[Tuple[float, ...], Tuple[int, ...], Tuple[float, ...], int]:
    if smoke:
        return (0.5, 1.0, 1.5), (1, 2), (0.0, _BATCH_WAIT_NS), 1500
    return (0.5, 0.8, 1.1, 1.5), (1, 2, 4), (0.0, _BATCH_WAIT_NS), 6000


def _single_shard_capacity_qps(catalog: ServiceCatalog, mix: RequestMix) -> float:
    """Offered QPS that saturates one shard's serialize pool (the
    bottleneck pool under a 50/50 kind mix)."""
    mean_ns = catalog.mean_service_ns("serialize", mix.size_weights)
    units = catalog.cereal_config.num_serializer_units
    return units * 1e9 / mean_ns / max(mix.serialize_fraction, 1e-9)


def run_sweep(smoke: bool = False) -> Tuple[Dict, ReportTable]:
    fractions, shard_counts, deadlines, num_requests = _grid(smoke)
    catalog = ServiceCatalog()
    mix = RequestMix()
    capacity = _single_shard_capacity_qps(catalog, mix)
    admission = AdmissionConfig(max_outstanding=200_000, enable_degrade=False)

    table = ReportTable(
        "Service scaling: offered QPS x shards x batch deadline",
        ["Load", "QPS", "Shards", "Wait (us)", "p50 (us)", "p99 (us)",
         "p999 (us)", "Goodput", "Batch"],
    )
    rows: List[Dict] = []
    for fraction in fractions:
        qps = capacity * fraction
        workload = PoissonWorkload(
            qps=qps, num_requests=num_requests, seed=_SEED, mix=mix
        )
        for shards in shard_counts:
            for deadline_ns in deadlines:
                config = ServiceConfig(
                    num_shards=shards,
                    batch_wait_ns=deadline_ns,
                    admission=admission,
                    functional="sample",
                    functional_every=64,
                )
                server = SerializationServer(catalog, config)
                report = server.run(workload.generate(catalog))
                row = {
                    "load_fraction": fraction,
                    "offered_qps": report.offered_qps,
                    "target_qps": qps,
                    "shards": shards,
                    "deadline_ns": deadline_ns,
                    "p50_ns": report.p50(),
                    "p95_ns": report.p95(),
                    "p99_ns": report.p99(),
                    "p999_ns": report.p999(),
                    "mean_ns": report.mean_latency_ns(),
                    "goodput_qps": report.goodput_qps,
                    "shed": report.shed_requests,
                    "degraded": report.degraded_requests,
                    "mean_batch_size": report.mean_batch_size,
                    "verified": report.verified_requests,
                }
                rows.append(row)
                table.add_row(
                    f"{fraction:.1f}x",
                    f"{qps / 1e3:,.0f}k",
                    str(shards),
                    f"{deadline_ns / 1e3:.0f}",
                    f"{row['p50_ns'] / 1e3:.1f}",
                    f"{row['p99_ns'] / 1e3:.1f}",
                    f"{row['p999_ns'] / 1e3:.1f}",
                    f"{row['goodput_qps'] / 1e3:,.0f}k",
                    f"{row['mean_batch_size']:.2f}",
                )
    table.add_note(
        f"{num_requests} requests/run, seed {_SEED:#x}, load relative to "
        f"one-shard serialize-pool capacity ({capacity / 1e3:,.0f}k QPS)"
    )
    table.add_note(
        "deadline 0 = unbatched; deadline > 0 coalesces up to 8 requests "
        "per dispatch"
    )

    chaos, tracer = _chaos_run(catalog, mix, capacity, smoke)
    payload = {
        "meta": {
            "seed": _SEED,
            "smoke": smoke,
            "num_requests": num_requests,
            "capacity_qps": capacity,
            "load_fractions": list(fractions),
            "shard_counts": list(shard_counts),
            "deadlines_ns": list(deadlines),
            "batch_wait_ns": _BATCH_WAIT_NS,
        },
        "results": {"sweep": rows, "chaos": chaos},
    }
    return payload, table, tracer


def _chaos_run(
    catalog: ServiceCatalog, mix: RequestMix, capacity: float, smoke: bool
) -> Tuple[Dict, Tracer]:
    """Overload + accelerator capacity faults: shed/degrade trajectory.

    Runs with tracing enabled on a private tracer (installed process-wide
    for the duration so fault instants land in it too); the caller exports
    it as ``TRACE_service.json``.
    """
    injector = FaultInjector(
        FaultPolicy(seed=_SEED, accelerator_fault_prob=0.05)
    )
    config = ServiceConfig(
        num_shards=1,
        functional="sample",
        functional_every=8,
        admission=AdmissionConfig(max_outstanding=256, degrade_threshold=0.75),
    )
    workload = PoissonWorkload(
        qps=capacity * 1.3,
        num_requests=400 if smoke else 1500,
        seed=_SEED + 1,
        mix=mix,
    )
    tracer = Tracer(enabled=True, capacity=1 << 18)
    previous = set_tracer(tracer)
    try:
        report = SerializationServer(
            catalog, config, injector=injector, tracer=tracer
        ).run(workload.generate(catalog))
    finally:
        set_tracer(previous)
    return report.as_dict(), tracer


# -- trajectory checks --------------------------------------------------------------


def _series(rows: List[Dict], shards: int, deadline_ns: float) -> List[Dict]:
    picked = [
        r for r in rows if r["shards"] == shards and r["deadline_ns"] == deadline_ns
    ]
    return sorted(picked, key=lambda r: r["load_fraction"])


def _nondecreasing(values: List[float], tol: float) -> bool:
    return all(b >= a * (1.0 - tol) for a, b in zip(values, values[1:]))


def check_properties(payload: Dict) -> Dict[str, Dict]:
    rows = payload["results"]["sweep"]
    meta = payload["meta"]
    shard_counts = meta["shard_counts"]
    deadlines = meta["deadlines_ns"]
    top_load = max(meta["load_fractions"])
    checks: Dict[str, Dict] = {}

    # (a) p99 vs offered load: monotone for every unbatched series, and the
    # saturating single-shard series must actually climb.
    failures = []
    for shards in shard_counts:
        p99s = [r["p99_ns"] for r in _series(rows, shards, 0.0)]
        if not _nondecreasing(p99s, _MONOTONE_TOL):
            failures.append(f"shards={shards} deadline=0 p99 series {p99s}")
    for deadline_ns in deadlines:
        p99s = [r["p99_ns"] for r in _series(rows, min(shard_counts), deadline_ns)]
        if not _nondecreasing(p99s, _MONOTONE_TOL) or p99s[-1] < 1.5 * p99s[0]:
            failures.append(
                f"1-shard deadline={deadline_ns:g} series not saturating: {p99s}"
            )
    checks["p99_monotone_vs_load"] = {
        "ok": not failures,
        "detail": "; ".join(failures) or "p99 non-decreasing in offered QPS",
    }

    # (b) adding shards at the highest offered QPS reduces p99.
    failures = []
    for deadline_ns in deadlines:
        top_rows = [
            r
            for r in rows
            if r["load_fraction"] == top_load and r["deadline_ns"] == deadline_ns
        ]
        top_rows.sort(key=lambda r: r["shards"])
        p99s = [r["p99_ns"] for r in top_rows]
        reversed_ok = all(b <= a * (1.0 + 0.05) for a, b in zip(p99s, p99s[1:]))
        if not reversed_ok or p99s[0] < 1.5 * p99s[-1]:
            failures.append(f"deadline={deadline_ns:g} p99 by shards {p99s}")
    checks["p99_falls_with_shards"] = {
        "ok": not failures,
        "detail": "; ".join(failures) or "p99 non-increasing in shard count",
    }

    # (c) batching wins goodput in the saturated single-shard regime.
    unbatched = _series(rows, min(shard_counts), 0.0)[-1]
    batched = _series(rows, min(shard_counts), max(deadlines))[-1]
    ok = batched["goodput_qps"] > unbatched["goodput_qps"]
    checks["batching_improves_goodput"] = {
        "ok": ok,
        "detail": (
            f"goodput {batched['goodput_qps']:,.0f} (deadline "
            f"{max(deadlines):g} ns) vs {unbatched['goodput_qps']:,.0f} "
            f"(unbatched) at {top_load}x load on "
            f"{min(shard_counts)} shard(s)"
        ),
    }

    # Chaos: every admitted request completed (shed+completed == total) and
    # the fault layer saw recoveries whenever faults were injected.
    chaos = payload["results"]["chaos"]
    requests = chaos["requests"]
    accounted = requests["completed"] + requests["shed"] == requests["total"]
    faults = chaos.get("faults", {}).get("accelerator", {})
    recovered = faults.get("injected", 0) == faults.get("recovered", 0)
    checks["chaos_accounting"] = {
        "ok": accounted and recovered,
        "detail": f"requests {requests}, accelerator faults {faults}",
    }
    return checks


def trace_checks(payload: Dict, trace_path: str) -> Dict[str, Dict]:
    """Gate the exported chaos trace: structure + SLO reconciliation."""
    import json

    checks: Dict[str, Dict] = {}
    with open(trace_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    try:
        counts = validate_chrome_trace(document)
        ok = counts["X"] > 0 and counts["M"] > 0
        detail = f"event counts {counts}"
    except ValueError as error:
        ok, detail = False, str(error)
    checks["trace_exports_and_validates"] = {"ok": ok, "detail": detail}

    # Request spans in the exported JSON carry ts/dur in microseconds;
    # re-derive latency quantiles and demand they match the SLO report to
    # within 1 ns of simulated time.
    chaos = payload["results"]["chaos"]
    slo = chaos["latency_ns"]["all"]
    completed = chaos["requests"]["completed"]
    latencies = sorted(
        event["dur"] * 1e3
        for event in document["traceEvents"]
        if event.get("ph") == "X" and event.get("name") == "request"
    )
    if len(latencies) != completed:
        checks["trace_reconciles_slo"] = {
            "ok": False,
            "detail": (
                f"{len(latencies)} request spans for {completed} "
                f"completed requests"
            ),
        }
        return checks
    p50 = exact_quantile(latencies, 50.0)
    p99 = exact_quantile(latencies, 99.0)
    err50 = abs(p50 - slo["p50"])
    err99 = abs(p99 - slo["p99"])
    checks["trace_reconciles_slo"] = {
        "ok": err50 <= 1.0 and err99 <= 1.0,
        "detail": (
            f"span-derived p50/p99 off by {err50:.3g}/{err99:.3g} ns "
            f"over {completed} request spans"
        ),
    }
    return checks


def _emit(
    payload: Dict, table: ReportTable, tracer: Tracer, results_dir: str
) -> Dict[str, Dict]:
    table.show()
    table.save(results_dir, "service_scaling")
    trace_path = emit_trace(
        results_dir,
        "service",
        tracer,
        metadata={"seed": _SEED, "run": "chaos"},
    )
    checks = check_properties(payload)
    checks.update(trace_checks(payload, trace_path))
    emit_json(
        results_dir,
        "service",
        payload["results"],
        meta=payload["meta"],
        checks=checks,
        runtime=runtime_snapshot(),
    )
    return checks


# -- pytest entry point ----------------------------------------------------------------


def test_service_scaling(benchmark, results_dir):
    def build():
        payload, table, tracer = run_sweep(smoke=False)
        return payload, _emit(payload, table, tracer, results_dir)

    _, checks = benchmark.pedantic(build, rounds=1, iterations=1)
    for name, outcome in checks.items():
        assert outcome["ok"], f"{name}: {outcome['detail']}"


# -- CLI entry point (CI smoke job) ------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small QPS grid for CI (< 60 s)",
    )
    parser.add_argument("--results-dir", default=_RESULTS_DIR)
    args = parser.parse_args(argv)
    payload, table, tracer = run_sweep(smoke=args.smoke)
    checks = _emit(payload, table, tracer, args.results_dir)
    failed = {name: c for name, c in checks.items() if not c["ok"]}
    for name, outcome in checks.items():
        status = "ok" if outcome["ok"] else "FAIL"
        print(f"check {name}: {status} — {outcome['detail']}")
    if failed:
        print(f"{len(failed)} check(s) failed", file=sys.stderr)
        return 1
    print(f"BENCH_service.json written under {args.results_dir}")
    print(f"TRACE_service.json written to {trace_json_path(args.results_dir, 'service')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
