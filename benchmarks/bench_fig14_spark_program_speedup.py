"""Figure 14 — Whole-program speedups on the six Spark applications.

Paper: accelerating S/D improves end-to-end application performance by
1.81x over Java S/D (up to 4.66x) and 1.69x over Kryo (up to 4.53x).
"""

from repro.analysis import ReportTable, geomean


def test_fig14_program_speedups(benchmark, spark_results, results_dir):
    def build():
        java = spark_results.results["java-builtin"]
        kryo = spark_results.results["kryo"]
        cereal = spark_results.results["cereal"]
        table = ReportTable(
            "Figure 14: Spark whole-program speedup",
            ["App", "Cereal vs Java", "Cereal vs Kryo"],
        )
        vs_java, vs_kryo = [], []
        for app in java:
            j = java[app].total_ns / cereal[app].total_ns
            k = kryo[app].total_ns / cereal[app].total_ns
            vs_java.append(j)
            vs_kryo.append(k)
            table.add_row(app, f"{j:.2f}x", f"{k:.2f}x")
        table.add_row(
            "GEOMEAN", f"{geomean(vs_java):.2f}x", f"{geomean(vs_kryo):.2f}x"
        )
        table.add_note("paper: 1.81x (up to 4.66x) and 1.69x (up to 4.53x)")
        table.show()
        table.save(results_dir, "fig14_program_speedup")
        return vs_java, vs_kryo

    vs_java, vs_kryo = benchmark.pedantic(build, rounds=1, iterations=1)
    assert 1.3 < geomean(vs_java) < 2.6  # paper: 1.81x
    assert 1.1 < geomean(vs_kryo) < 2.3  # paper: 1.69x
    assert max(vs_java) > 3.0  # SVM's big win (paper: up to 4.66x)
    assert all(v >= 1.0 for v in vs_java)  # never a slowdown


def test_fig14_svm_benefits_most(benchmark, spark_results, results_dir):
    def best_app():
        java = spark_results.results["java-builtin"]
        cereal = spark_results.results["cereal"]
        speedups = {
            app: java[app].total_ns / cereal[app].total_ns for app in java
        }
        return max(speedups, key=speedups.get)

    assert benchmark(best_app) == "svm"
