"""Machine-readable benchmark output shared by every ``bench_*.py``.

The human-readable ``ReportTable`` text under ``benchmarks/results/``
records what a run looked like; the ``BENCH_<name>.json`` files written
here record the numbers themselves, so the performance trajectory across
commits can be diffed and plotted mechanically. One schema for all
benches:

    {
      "schema_version": 1,
      "bench": "<name>",
      "meta": {...seed, grid, calibration...},
      "results": {...bench-specific payload...},
      "runtime": {...plan/layout cache and buffer pool counters...},  # optional
      "checks": {"<check>": {"ok": bool, "detail": "..."}, ...}   # optional
    }

The optional ``runtime`` block is the shared shape for process-wide
serialization-cache health (:func:`runtime_snapshot`): compiled-plan cache
hit rate, layout cache hit rate, and the output buffer pool's high-water
mark. ``bench_wallclock.py`` and ``bench_service_scaling.py`` both emit
it so cache behaviour can be diffed across commits alongside throughput.

Keys are sorted and no wall-clock timestamps are embedded, so a seeded
bench emits byte-identical JSON run-to-run (cache counters are excluded
from that guarantee — they reflect whatever ran in the process first).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

SCHEMA_VERSION = 1


def runtime_snapshot() -> Dict:
    """Snapshot the process-wide serialization caches in the shared shape.

    Every counter here lives in the obs metrics registry
    (:mod:`repro.obs.metrics`) — the ``stats()`` views below are thin
    reads over ``plan_cache.*`` / ``layout_cache.*`` / ``bufpool.*``
    metrics — and the full registry rides along under ``"metrics"``, so
    one ``BENCH_*.json`` carries both the legacy cache shape and
    everything else the run recorded (fault counters, service metrics).
    """
    from repro.common.bufpool import chunk_pool_stats, pool_stats
    from repro.formats.codegen import codegen_cache_stats
    from repro.formats.plans import plan_cache_stats
    from repro.formats.secure import decode_stats
    from repro.jvm import layout_cache
    from repro.obs.metrics import get_registry

    pool = pool_stats()
    chunk_pool = chunk_pool_stats()
    plan = plan_cache_stats()
    codegen = codegen_cache_stats()
    layout = layout_cache.stats()
    registry_snapshot = get_registry().snapshot()
    memstore = {
        key: value
        for key, value in registry_snapshot.items()
        if key.startswith("memstore.")
    }
    return {
        "plan_cache": plan,
        "plan_cache_hit_rate": plan["hit_rate"],
        "codegen_cache": codegen,
        "codegen_cache_hit_rate": codegen["hit_rate"],
        "layout_cache": layout,
        "arena_high_water_mark_bytes": pool["high_water_mark_bytes"],
        "buffer_pool": pool,
        "chunk_pool": chunk_pool,
        "chunk_pool_high_water_mark_bytes": chunk_pool[
            "high_water_mark_bytes"
        ],
        "secure_decode": decode_stats(),
        "memstore": memstore,
        "metrics": registry_snapshot,
    }


def trace_json_path(results_dir: str, name: str) -> str:
    return os.path.join(results_dir, f"TRACE_{name}.json")


def emit_trace(results_dir: str, name: str, tracer, metadata=None) -> str:
    """Validate and write ``TRACE_<name>.json`` (Chrome trace-event JSON).

    The file loads directly in ``chrome://tracing`` / Perfetto; returns
    the path. Raises :class:`ValueError` if the tracer's contents render
    to a malformed document, so benches fail loudly rather than shipping
    an unloadable trace.
    """
    from repro.obs.export import write_chrome_trace

    os.makedirs(results_dir, exist_ok=True)
    meta = {"bench": name}
    if metadata:
        meta.update(metadata)
    return write_chrome_trace(
        tracer, trace_json_path(results_dir, name), metadata=meta
    )


def bench_json_path(results_dir: str, name: str) -> str:
    return os.path.join(results_dir, f"BENCH_{name}.json")


def emit_json(
    results_dir: str,
    name: str,
    results: Dict,
    meta: Optional[Dict] = None,
    checks: Optional[Dict] = None,
    runtime: Optional[Dict] = None,
) -> str:
    """Write ``BENCH_<name>.json``; returns the path."""
    if not results:
        raise ValueError(f"refusing to emit empty results for bench {name!r}")
    document: Dict = {
        "schema_version": SCHEMA_VERSION,
        "bench": name,
        "meta": meta or {},
        "results": results,
    }
    if runtime is not None:
        document["runtime"] = runtime
    if checks is not None:
        document["checks"] = checks
    os.makedirs(results_dir, exist_ok=True)
    path = bench_json_path(results_dir, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_json(results_dir: str, name: str) -> Dict:
    """Read a previously emitted ``BENCH_<name>.json``."""
    with open(bench_json_path(results_dir, name), "r", encoding="utf-8") as handle:
        return json.load(handle)
