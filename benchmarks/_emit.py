"""Machine-readable benchmark output shared by every ``bench_*.py``.

The human-readable ``ReportTable`` text under ``benchmarks/results/``
records what a run looked like; the ``BENCH_<name>.json`` files written
here record the numbers themselves, so the performance trajectory across
commits can be diffed and plotted mechanically. One schema for all
benches:

    {
      "schema_version": 1,
      "bench": "<name>",
      "meta": {...seed, grid, calibration...},
      "results": {...bench-specific payload...},
      "checks": {"<check>": {"ok": bool, "detail": "..."}, ...}   # optional
    }

Keys are sorted and no wall-clock timestamps are embedded, so a seeded
bench emits byte-identical JSON run-to-run.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

SCHEMA_VERSION = 1


def bench_json_path(results_dir: str, name: str) -> str:
    return os.path.join(results_dir, f"BENCH_{name}.json")


def emit_json(
    results_dir: str,
    name: str,
    results: Dict,
    meta: Optional[Dict] = None,
    checks: Optional[Dict] = None,
) -> str:
    """Write ``BENCH_<name>.json``; returns the path."""
    if not results:
        raise ValueError(f"refusing to emit empty results for bench {name!r}")
    document: Dict = {
        "schema_version": SCHEMA_VERSION,
        "bench": name,
        "meta": meta or {},
        "results": results,
    }
    if checks is not None:
        document["checks"] = checks
    os.makedirs(results_dir, exist_ok=True)
    path = bench_json_path(results_dir, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_json(results_dir: str, name: str) -> Dict:
    """Read a previously emitted ``BENCH_<name>.json``."""
    with open(bench_json_path(results_dir, name), "r", encoding="utf-8") as handle:
        return json.load(handle)
