"""Streaming chunked serialization: TTFB and arena-footprint gates.

Two legs, one contract each — at **equal goodput** (chunking re-times
when bytes leave, it never changes what the run costs), streaming must
deliver first bytes much earlier while holding a bounded arena window
instead of the whole payload:

* **Shuffle leg** — a large KV shuffle on the mini-Spark engine, run
  whole-stream and chunked (:class:`repro.spark.ChunkingConfig`). Gates:
  chunked-vs-single-shot byte identity (formats-level and end-to-end
  record equivalence), total ledger time within 0.1%, aggregate
  time-to-first-byte reduced >= 5x, and the chunk arena pool's
  high-water mark >= 4x below the whole-stream encode buffer.
* **Service leg** — large responses streamed from the serialization
  server (:class:`repro.service.StreamingConfig`). Gates: identical
  completed-request count and goodput, dispatch-relative TTFB reduced
  >= 5x, response-buffer high-water mark >= 4x below whole-response
  buffering, and the SLO report's streaming section reconciling with
  the ``response.chunk`` spans in the exported trace to within 1 ns.

Both legs run under one enabled tracer; ``TRACE_streaming.json`` carries
``transfer.chunk`` spans (spark track) and ``request``/``response.chunk``
span trees (service tracks) and must validate as Chrome trace JSON.

Run standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke

or as part of the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_streaming.py
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Tuple

if __name__ == "__main__":  # allow `python benchmarks/bench_streaming.py`
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _emit import emit_json, emit_trace, runtime_snapshot, trace_json_path  # noqa: E402
from repro.analysis import ReportTable  # noqa: E402
from repro.common.bufpool import chunk_pool_stats, reset_chunk_pool  # noqa: E402
from repro.formats import (  # noqa: E402
    CerealSerializer,
    KryoSerializer,
    collect_chunks,
)
from repro.jvm.klass import FieldDescriptor, FieldKind, InstanceKlass  # noqa: E402
from repro.obs import (  # noqa: E402
    Tracer,
    exact_quantile,
    set_tracer,
    validate_chrome_trace,
)
from repro.service import (  # noqa: E402
    PoissonWorkload,
    RequestMix,
    SerializationServer,
    ServiceCatalog,
    ServiceConfig,
    SizeClass,
    StreamingConfig,
)
from repro.spark import ChunkingConfig, MiniSparkContext, SoftwareBackend  # noqa: E402

_SEED = 0x57E4
_TTFB_GATE = 5.0
_ARENA_GATE = 4.0
_CHUNK_BYTES = 2048

_RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


# -- shuffle leg -------------------------------------------------------------------------


def _kv_context(chunking: Optional[ChunkingConfig]) -> Tuple[MiniSparkContext, object]:
    context = MiniSparkContext(
        SoftwareBackend(KryoSerializer()), chunking=chunking
    )
    klass = context.registry.register(
        InstanceKlass(
            "KV",
            [
                FieldDescriptor("key", FieldKind.LONG),
                FieldDescriptor("value", FieldKind.LONG),
            ],
        )
    )
    context.registry.array_klass(FieldKind.REFERENCE)
    registration = context.backend.serializer.registration
    for k in context.registry:
        registration.register(k)
    return context, klass


def _shuffle_keys(context, klass, num_records: int) -> List[int]:
    records = []
    for index in range(num_records):
        record = context.executor_heap.allocate(klass)
        record.set("key", index)
        record.set("value", index * 7)
        records.append(record)
    dataset = context.parallelize(records, 2)
    shuffled = dataset.shuffle(key_fn=lambda r: r.get("key") % 2, num_partitions=2)
    return sorted(
        r.get("key") for partition in shuffled.partitions for r in partition
    )


def run_shuffle_leg(smoke: bool, tracer: Tracer) -> Dict:
    num_records = 8_000 if smoke else 24_000

    whole_context, klass = _kv_context(chunking=None)
    whole_keys = _shuffle_keys(whole_context, klass, num_records)
    whole_total_ns = whole_context.breakdown.total_ns

    reset_chunk_pool()
    previous = set_tracer(tracer)
    try:
        chunked_context, klass = _kv_context(
            chunking=ChunkingConfig(chunk_bytes=_CHUNK_BYTES)
        )
        chunked_keys = _shuffle_keys(chunked_context, klass, num_records)
    finally:
        set_tracer(previous)
    chunked_total_ns = chunked_context.breakdown.total_ns
    stats = chunked_context.chunk_stats
    pool = chunk_pool_stats()

    first_sum = sum(s.first_byte_ns for s in stats)
    whole_first_sum = sum(s.whole_first_byte_ns for s in stats)
    whole_buffer = max(s.payload_bytes for s in stats)
    chunk_spans = [
        s for s in tracer.spans() if s.name == "transfer.chunk"
    ]
    return {
        "num_records": num_records,
        "chunk_bytes": _CHUNK_BYTES,
        "deliveries": len(stats),
        "chunks": sum(s.chunks for s in stats),
        "records_match": chunked_keys == whole_keys,
        "whole_total_ns": whole_total_ns,
        "chunked_total_ns": chunked_total_ns,
        "ttfb_speedup": whole_first_sum / first_sum if first_sum else 0.0,
        "max_bucket_bytes": whole_buffer,
        "arena_hwm_bytes": pool["high_water_mark_bytes"],
        "arena_reduction": (
            whole_buffer / pool["high_water_mark_bytes"]
            if pool["high_water_mark_bytes"]
            else 0.0
        ),
        "chunk_pool": pool,
        "trace_chunk_spans": len(chunk_spans),
        "retries": sum(s.retries for s in stats),
    }


def byte_identity_check(catalog: ServiceCatalog) -> Dict:
    """Chunked concatenation must equal the single-shot encode, byte for
    byte, on the catalog's largest graph."""
    from repro.common.bufpool import ChunkArenaPool

    serializer = CerealSerializer(catalog.registration)
    entry = max(catalog.entries.values(), key=lambda e: e.stream_bytes)
    whole = serializer.serialize(entry.root)
    failures = []
    for chunk_bytes in (1024, _CHUNK_BYTES, len(whole.stream.data) + 1):
        # Private pool: the over-payload chunk size legitimately fills one
        # arena with the whole stream, which must not pollute the global
        # pool's high-water mark the CI gate reads.
        chunks, summary = collect_chunks(
            serializer, entry.root, chunk_bytes, pool=ChunkArenaPool(4, chunk_bytes)
        )
        if b"".join(chunks) != whole.stream.data:
            failures.append(f"chunk_bytes={chunk_bytes} diverged")
        if summary.total_bytes != len(whole.stream.data):
            failures.append(f"chunk_bytes={chunk_bytes} summary mismatch")
    return {
        "entry": entry.name,
        "stream_bytes": whole.stream.size_bytes,
        "ok": not failures,
        "detail": "; ".join(failures)
        or f"identical at 3 chunk sizes over {whole.stream.size_bytes} bytes",
    }


# -- service leg -------------------------------------------------------------------------

_SERVICE_SIZES = (
    SizeClass("small", "tree", objects=48),
    SizeClass("huge", "graph", objects=1200, fanout=5),
)
_SERVICE_MIX = RequestMix(
    serialize_fraction=0.7, size_weights={"small": 0.25, "huge": 0.75}
)


def _run_service(
    catalog: ServiceCatalog,
    streaming: Optional[StreamingConfig],
    num_requests: int,
    tracer: Optional[Tracer] = None,
):
    workload = PoissonWorkload(
        1200.0, num_requests, seed=_SEED, mix=_SERVICE_MIX
    ).generate(catalog)
    server = SerializationServer(
        catalog,
        ServiceConfig(num_shards=2, functional="off", streaming=streaming),
        tracer=tracer,
    )
    report = server.run(workload)
    return server, report


def run_service_leg(smoke: bool, tracer: Tracer) -> Dict:
    num_requests = 300 if smoke else 1000
    catalog = ServiceCatalog(size_classes=_SERVICE_SIZES)

    _, baseline = _run_service(catalog, None, num_requests)
    streaming = StreamingConfig(
        chunk_bytes=4096, max_inflight_chunks=4, threshold_bytes=32 * 1024
    )
    previous = set_tracer(tracer)
    try:
        server, report = _run_service(
            catalog, streaming, num_requests, tracer=tracer
        )
    finally:
        set_tracer(previous)
    stats = server.streamer.stats()
    return {
        "num_requests": num_requests,
        "chunk_bytes": streaming.chunk_bytes,
        "max_inflight_chunks": streaming.max_inflight_chunks,
        "threshold_bytes": streaming.threshold_bytes,
        "baseline_goodput_qps": baseline.goodput_qps,
        "streamed_goodput_qps": report.goodput_qps,
        "baseline_completed": baseline.completed_requests,
        "streamed_completed": report.completed_requests,
        "streaming": stats,
        "slo": report.as_dict().get("streaming", {}),
        "ttfb_speedup": stats["service_ttfb_speedup"],
        "buffer_reduction": (
            stats["whole_buffer_hwm_bytes"] / stats["buffer_hwm_bytes"]
            if stats["buffer_hwm_bytes"]
            else 0.0
        ),
    }


# -- checks ------------------------------------------------------------------------------


def check_properties(results: Dict) -> Dict[str, Dict]:
    checks: Dict[str, Dict] = {}
    shuffle = results["shuffle"]
    service = results["service"]

    checks["shuffle_byte_identity"] = results["byte_identity"]

    checks["shuffle_records_equivalent"] = {
        "ok": shuffle["records_match"],
        "detail": (
            f"{shuffle['num_records']} records identical after chunked "
            f"shuffle across {shuffle['chunks']} chunks"
        ),
    }

    drift = abs(shuffle["chunked_total_ns"] - shuffle["whole_total_ns"]) / max(
        shuffle["whole_total_ns"], 1.0
    )
    checks["shuffle_equal_goodput"] = {
        "ok": drift < 1e-3 and shuffle["retries"] == 0,
        "detail": (
            f"ledger drift {drift:.2e} "
            f"({shuffle['chunked_total_ns']:,.0f} vs "
            f"{shuffle['whole_total_ns']:,.0f} ns), "
            f"{shuffle['retries']} retries"
        ),
    }

    checks["shuffle_ttfb_speedup"] = {
        "ok": shuffle["ttfb_speedup"] >= _TTFB_GATE,
        "detail": (
            f"aggregate TTFB {shuffle['ttfb_speedup']:.1f}x faster chunked "
            f"(gate {_TTFB_GATE:.0f}x) over {shuffle['deliveries']} deliveries"
        ),
    }

    checks["shuffle_arena_hwm"] = {
        "ok": shuffle["arena_reduction"] >= _ARENA_GATE,
        "detail": (
            f"arena HWM {shuffle['arena_hwm_bytes']:,} B vs whole-stream "
            f"buffer {shuffle['max_bucket_bytes']:,} B = "
            f"{shuffle['arena_reduction']:.1f}x smaller (gate {_ARENA_GATE:.0f}x)"
        ),
    }

    checks["shuffle_trace_chunks"] = {
        "ok": shuffle["trace_chunk_spans"] == shuffle["chunks"],
        "detail": (
            f"{shuffle['trace_chunk_spans']} transfer.chunk spans for "
            f"{shuffle['chunks']} chunks shipped"
        ),
    }

    checks["service_equal_goodput"] = {
        "ok": (
            service["streamed_completed"] == service["baseline_completed"]
            and abs(
                service["streamed_goodput_qps"] - service["baseline_goodput_qps"]
            )
            / max(service["baseline_goodput_qps"], 1.0)
            < 0.05
        ),
        "detail": (
            f"goodput {service['streamed_goodput_qps']:,.0f} streamed vs "
            f"{service['baseline_goodput_qps']:,.0f} whole QPS, "
            f"{service['streamed_completed']} completed both ways"
        ),
    }

    checks["service_ttfb_speedup"] = {
        "ok": service["ttfb_speedup"] >= _TTFB_GATE,
        "detail": (
            f"dispatch-relative TTFB {service['ttfb_speedup']:.1f}x faster "
            f"streamed (gate {_TTFB_GATE:.0f}x) over "
            f"{service['streaming']['streamed']} streamed responses"
        ),
    }

    checks["service_buffer_hwm"] = {
        "ok": service["buffer_reduction"] >= _ARENA_GATE,
        "detail": (
            f"response buffer HWM {service['streaming']['buffer_hwm_bytes']:,} B "
            f"vs whole {service['streaming']['whole_buffer_hwm_bytes']:,} B = "
            f"{service['buffer_reduction']:.1f}x smaller (gate {_ARENA_GATE:.0f}x)"
        ),
    }
    return checks


def trace_checks(results: Dict, tracer: Tracer, trace_path: str) -> Dict[str, Dict]:
    """Gate the exported trace: structure + streaming-SLO reconciliation."""
    import json

    checks: Dict[str, Dict] = {}
    with open(trace_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    try:
        counts = validate_chrome_trace(document)
        ok = counts["X"] > 0
        detail = f"event counts {counts}"
    except ValueError as error:
        ok, detail = False, str(error)
    checks["trace_exports_and_validates"] = {"ok": ok, "detail": detail}

    # Per streamed request, TTFB measured from the trace (first
    # response.chunk end minus request span start) must reproduce the SLO
    # report's streaming quantiles to within 1 ns.
    slo = results["service"]["slo"]
    spans = tracer.spans()
    requests = {
        s.attrs.get("request_id"): s for s in spans if s.name == "request"
    }
    first_byte: Dict[object, float] = {}
    chunk_spans = 0
    for span in spans:
        if span.name != "response.chunk":
            continue
        chunk_spans += 1
        rid = span.attrs.get("request_id")
        if rid not in first_byte or span.end_ns < first_byte[rid]:
            first_byte[rid] = span.end_ns
    ttfbs = sorted(
        done - requests[rid].start_ns for rid, done in first_byte.items()
    )
    expected_chunks = results["service"]["streaming"]["chunks"]
    expected_streamed = slo.get("streamed_requests", 0)
    if chunk_spans != expected_chunks or len(ttfbs) != expected_streamed:
        checks["service_slo_trace_reconciles"] = {
            "ok": False,
            "detail": (
                f"{chunk_spans} chunk spans for {expected_chunks} chunks, "
                f"{len(ttfbs)} streamed requests for {expected_streamed}"
            ),
        }
        return checks
    err50 = abs(exact_quantile(ttfbs, 50.0) - slo["ttfb_ns"]["p50"])
    err99 = abs(exact_quantile(ttfbs, 99.0) - slo["ttfb_ns"]["p99"])
    checks["service_slo_trace_reconciles"] = {
        "ok": err50 <= 1.0 and err99 <= 1.0,
        "detail": (
            f"span-derived TTFB p50/p99 off by {err50:.3g}/{err99:.3g} ns "
            f"over {len(ttfbs)} streamed requests"
        ),
    }
    return checks


# -- driver ------------------------------------------------------------------------------


def run_bench(smoke: bool = False) -> Tuple[Dict, ReportTable, Tracer]:
    tracer = Tracer(enabled=True, capacity=1 << 18)
    shuffle = run_shuffle_leg(smoke, tracer)

    catalog_for_identity = ServiceCatalog(size_classes=_SERVICE_SIZES)
    identity = byte_identity_check(catalog_for_identity)

    service = run_service_leg(smoke, tracer)
    results = {
        "shuffle": shuffle,
        "service": service,
        "byte_identity": identity,
    }

    table = ReportTable(
        "Streaming chunked serialization: TTFB and arena footprint",
        ["Leg", "Payload", "Chunks", "TTFB speedup", "Buffer: whole",
         "Buffer: chunked", "Reduction"],
    )
    table.add_row(
        "shuffle",
        f"{shuffle['max_bucket_bytes'] / 1024:.0f} KiB/bucket",
        str(shuffle["chunks"]),
        f"{shuffle['ttfb_speedup']:.1f}x",
        f"{shuffle['max_bucket_bytes'] / 1024:.0f} KiB",
        f"{shuffle['arena_hwm_bytes'] / 1024:.0f} KiB",
        f"{shuffle['arena_reduction']:.1f}x",
    )
    table.add_row(
        "service",
        f"{service['streaming']['whole_buffer_hwm_bytes'] / 1024:.0f} KiB/resp",
        str(service["streaming"]["chunks"]),
        f"{service['ttfb_speedup']:.1f}x",
        f"{service['streaming']['whole_buffer_hwm_bytes'] / 1024:.0f} KiB",
        f"{service['streaming']['buffer_hwm_bytes'] / 1024:.0f} KiB",
        f"{service['buffer_reduction']:.1f}x",
    )
    table.add_note(
        f"seed {_SEED:#x}; equal goodput both legs (chunking re-times "
        f"egress, never the work); gates: TTFB >= {_TTFB_GATE:.0f}x, "
        f"buffer >= {_ARENA_GATE:.0f}x"
    )
    return results, table, tracer


def _emit(
    results: Dict, table: ReportTable, tracer: Tracer, results_dir: str, smoke: bool
) -> Dict[str, Dict]:
    table.show()
    table.save(results_dir, "streaming")
    trace_path = emit_trace(
        results_dir, "streaming", tracer, metadata={"seed": _SEED}
    )
    checks = check_properties(results)
    checks.update(trace_checks(results, tracer, trace_path))
    emit_json(
        results_dir,
        "streaming",
        results,
        meta={"seed": _SEED, "smoke": smoke, "chunk_bytes": _CHUNK_BYTES},
        checks=checks,
        runtime=runtime_snapshot(),
    )
    return checks


# -- pytest entry point ------------------------------------------------------------------


def test_streaming(benchmark, results_dir):
    def build():
        results, table, tracer = run_bench(smoke=False)
        return results, _emit(results, table, tracer, results_dir, smoke=False)

    _, checks = benchmark.pedantic(build, rounds=1, iterations=1)
    for name, outcome in checks.items():
        assert outcome["ok"], f"{name}: {outcome['detail']}"


# -- CLI entry point (CI smoke job) ------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small payloads for CI (< 60 s)",
    )
    parser.add_argument("--results-dir", default=_RESULTS_DIR)
    args = parser.parse_args(argv)
    results, table, tracer = run_bench(smoke=args.smoke)
    checks = _emit(results, table, tracer, args.results_dir, smoke=args.smoke)
    failed = {name: c for name, c in checks.items() if not c["ok"]}
    for name, outcome in checks.items():
        status = "ok" if outcome["ok"] else "FAIL"
        print(f"check {name}: {status} — {outcome['detail']}")
    if failed:
        print(f"{len(failed)} check(s) failed", file=sys.stderr)
        return 1
    print(f"BENCH_streaming.json written under {args.results_dir}")
    print(
        f"TRACE_streaming.json written to "
        f"{trace_json_path(args.results_dir, 'streaming')}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
