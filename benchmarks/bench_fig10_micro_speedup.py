"""Figure 10 — Microbenchmark S/D speedups over Java S/D (log scale).

Paper: Kryo 2.30x (ser) / 52.3x (deser); Cereal 26.5x (ser) / 364.5x
(deser); "Cereal Vanilla" (no pipelining, one block reconstructor) shows
the fine-grained parallelism's contribution.
"""

from repro.analysis import ReportTable, geomean
from repro.workloads import MICROBENCH_CONFIGS


def _speedup_table(micro_results, op, results_dir, filename):
    table = ReportTable(
        f"Figure 10: {op} speedup over Java S/D",
        ["Workload", "Kryo", "Cereal Vanilla", "Cereal"],
    )
    kryo, vanilla, cereal = [], [], []
    for workload in MICROBENCH_CONFIGS:
        k = micro_results.speedup_over_java(workload, "kryo", op)
        v = micro_results.speedup_over_java(workload, "cereal-vanilla", op)
        c = micro_results.speedup_over_java(workload, "cereal", op)
        kryo.append(k)
        vanilla.append(v)
        cereal.append(c)
        table.add_row(workload, f"{k:.1f}x", f"{v:.1f}x", f"{c:.1f}x")
    table.add_row(
        "GEOMEAN",
        f"{geomean(kryo):.1f}x",
        f"{geomean(vanilla):.1f}x",
        f"{geomean(cereal):.1f}x",
    )
    table.show()
    table.save(results_dir, filename)
    return geomean(kryo), geomean(vanilla), geomean(cereal)


def test_fig10_serialization_speedup(benchmark, micro_results, results_dir):
    kryo, vanilla, cereal = benchmark.pedantic(
        _speedup_table,
        args=(micro_results, "serialize", results_dir, "fig10_serialize"),
        rounds=1,
        iterations=1,
    )
    # Paper: Kryo 2.30x, Cereal 26.5x.
    assert 1.2 < kryo < 4.5
    assert 12 < cereal < 60
    assert cereal > kryo  # the accelerator dominates software
    assert cereal > vanilla  # pipelining matters


def test_fig10_deserialization_speedup(benchmark, micro_results, results_dir):
    kryo, vanilla, cereal = benchmark.pedantic(
        _speedup_table,
        args=(micro_results, "deserialize", results_dir, "fig10_deserialize"),
        rounds=1,
        iterations=1,
    )
    # Paper: Kryo 52.3x, Cereal 364.5x.
    assert 10 < kryo < 120
    assert 100 < cereal < 900
    assert cereal > kryo
    assert cereal > vanilla


def test_fig10_deser_gains_exceed_ser(benchmark, micro_results, results_dir):
    """The decoupled format benefits deserialization the most (Section VI-B)."""

    def ratio():
        ser = [
            micro_results.speedup_over_java(w, "cereal", "serialize")
            for w in MICROBENCH_CONFIGS
        ]
        deser = [
            micro_results.speedup_over_java(w, "cereal", "deserialize")
            for w in MICROBENCH_CONFIGS
        ]
        return geomean(deser) / geomean(ser)

    value = benchmark(ratio)
    assert value > 3.0  # paper: 364.5 / 26.5 = 13.8
