"""Figure 17 — S/D energy on the Spark applications, normalized to Java S/D.

Paper: Kryo saves modest energy (its speedup on the same CPU); Cereal saves
313.6x (serialize) / 165.4x (deserialize) vs Java S/D and 227.75x / 136.28x
overall vs Java and Kryo respectively, by combining high speedups with a
~1.2 W accelerator against a 140 W host.
"""

from repro.analysis import ReportTable, geomean
from repro.cereal.power import cereal_energy_joules, cpu_energy_joules


def _sd_energy(result, backend, kind):
    """Energy of one app's serialize or deserialize time on its engine."""
    time_s = (
        result.breakdown.serialize_ns
        if kind == "serialize"
        else result.breakdown.deserialize_ns
    ) * 1e-9
    if backend == "cereal":
        return cereal_energy_joules(time_s, kind)
    return cpu_energy_joules(time_s)


def test_fig17_energy(benchmark, spark_results, results_dir):
    def build():
        table = ReportTable(
            "Figure 17: S/D energy normalized to Java S/D (ser / deser)",
            ["App", "Kryo", "Cereal"],
        )
        kryo_savings = {"serialize": [], "deserialize": []}
        cereal_savings = {"serialize": [], "deserialize": []}
        for app in spark_results.apps():
            java = spark_results.results["java-builtin"][app]
            kryo = spark_results.results["kryo"][app]
            cereal = spark_results.results["cereal"][app]
            cells = {}
            for kind in ("serialize", "deserialize"):
                base = _sd_energy(java, "java-builtin", kind)
                k = _sd_energy(kryo, "kryo", kind)
                c = _sd_energy(cereal, "cereal", kind)
                kryo_savings[kind].append(base / k)
                cereal_savings[kind].append(base / c)
                cells[kind] = (k / base, c / base)
            table.add_row(
                app,
                f"{cells['serialize'][0]:.2f} / {cells['deserialize'][0]:.2f}",
                f"{cells['serialize'][1]:.5f} / {cells['deserialize'][1]:.5f}",
            )
        table.add_note("paper: Cereal saves 313.6x ser / 165.4x deser vs Java S/D")
        table.show()
        table.save(results_dir, "fig17_energy")
        return kryo_savings, cereal_savings

    kryo_savings, cereal_savings = benchmark.pedantic(build, rounds=1, iterations=1)
    # Kryo saves energy in proportion to its speedup (same device).
    assert 1.0 < geomean(kryo_savings["serialize"] + kryo_savings["deserialize"]) < 6
    # Cereal's savings are orders of magnitude (paper: 313.6x / 165.4x).
    ser_saving = geomean(cereal_savings["serialize"])
    de_saving = geomean(cereal_savings["deserialize"])
    assert ser_saving > 100
    assert de_saving > 100


def test_fig17_total_savings_vs_both_baselines(
    benchmark, spark_results, results_dir
):
    """Paper headline: 227.75x vs Java built-in and 136.28x vs Kryo."""

    def totals():
        ratios_java, ratios_kryo = [], []
        for app in spark_results.apps():
            java = spark_results.results["java-builtin"][app]
            kryo = spark_results.results["kryo"][app]
            cereal = spark_results.results["cereal"][app]
            cereal_total = _sd_energy(cereal, "cereal", "serialize") + _sd_energy(
                cereal, "cereal", "deserialize"
            )
            java_total = _sd_energy(java, "java-builtin", "serialize") + _sd_energy(
                java, "java-builtin", "deserialize"
            )
            kryo_total = _sd_energy(kryo, "kryo", "serialize") + _sd_energy(
                kryo, "kryo", "deserialize"
            )
            ratios_java.append(java_total / cereal_total)
            ratios_kryo.append(kryo_total / cereal_total)
        return geomean(ratios_java), geomean(ratios_kryo)

    vs_java, vs_kryo = benchmark(totals)
    assert 100 < vs_java < 2500  # paper: 227.75x
    assert 50 < vs_kryo < 1500  # paper: 136.28x
    assert vs_java > vs_kryo
