"""Figure 13 — S/D speedups on the six Spark applications.

Paper: Kryo achieves only 1.67x over Java S/D; Cereal achieves 7.97x over
Java S/D and 4.81x over Kryo.
"""

from repro.analysis import ReportTable, geomean


def _sd_times(spark_results, backend):
    return {
        app: result.breakdown.sd_ns
        for app, result in spark_results.results[backend].items()
    }


def test_fig13_sd_speedups(benchmark, spark_results, results_dir):
    def build():
        java = _sd_times(spark_results, "java-builtin")
        kryo = _sd_times(spark_results, "kryo")
        cereal = _sd_times(spark_results, "cereal")
        table = ReportTable(
            "Figure 13: Spark S/D speedup",
            ["App", "Kryo / Java", "Cereal / Java", "Cereal / Kryo"],
        )
        ratios = {"jk": [], "jc": [], "kc": []}
        for app in java:
            jk = java[app] / kryo[app]
            jc = java[app] / cereal[app]
            kc = kryo[app] / cereal[app]
            ratios["jk"].append(jk)
            ratios["jc"].append(jc)
            ratios["kc"].append(kc)
            table.add_row(app, f"{jk:.2f}x", f"{jc:.2f}x", f"{kc:.2f}x")
        table.add_row(
            "GEOMEAN",
            f"{geomean(ratios['jk']):.2f}x",
            f"{geomean(ratios['jc']):.2f}x",
            f"{geomean(ratios['kc']):.2f}x",
        )
        table.add_note("paper: Kryo 1.67x, Cereal 7.97x / 4.81x")
        table.show()
        table.save(results_dir, "fig13_spark_sd_speedup")
        return {key: geomean(values) for key, values in ratios.items()}

    means = benchmark.pedantic(build, rounds=1, iterations=1)
    # Kryo's gain inside Spark is modest (paper: 1.67x).
    assert 1.2 < means["jk"] < 3.5
    # Cereal's S/D speedups (paper: 7.97x over Java, 4.81x over Kryo).
    assert 5 < means["jc"] < 16
    assert 2.5 < means["kc"] < 8


def test_fig13_cereal_wins_every_app(benchmark, spark_results, results_dir):
    def worst():
        java = _sd_times(spark_results, "java-builtin")
        cereal = _sd_times(spark_results, "cereal")
        return min(java[app] / cereal[app] for app in java)

    assert benchmark(worst) > 2.0
