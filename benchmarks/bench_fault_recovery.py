"""Chaos benchmark — end-to-end cost of fault recovery.

Sweeps the injected fault probability from 0% to 10% over one Spark
application per backend (TeraSort: both shuffle- and transfer-heavy) and
reports the end-to-end slowdown versus the fault-free run, the transfer
retry count, lineage re-executions, and accelerator fallbacks. Checksummed
framing is enabled for every faulted run so corruption is always detected
rather than silently decoded.
"""

from __future__ import annotations

from _emit import emit_json, runtime_snapshot
from repro.analysis import ReportTable
from repro.cereal import CerealAccelerator
from repro.faults import FaultInjector, FaultPolicy
from repro.formats import ClassRegistration, JavaSerializer, KryoSerializer
from repro.spark.apps import SPARK_APPS
from repro.spark.backend import CerealBackend, SoftwareBackend

_APP = "terasort"
_PROBABILITIES = (0.0, 0.01, 0.02, 0.05, 0.10)
_SEED = 0xFA57


def _make_backend(name: str, injector):
    if name == "java-builtin":
        return SoftwareBackend(JavaSerializer())
    if name == "kryo":
        return SoftwareBackend(KryoSerializer(ClassRegistration()))
    if name == "cereal":
        return CerealBackend(CerealAccelerator(), injector=injector)
    raise ValueError(name)


def _run_once(backend_name: str, probability: float):
    if probability > 0:
        injector = FaultInjector(
            FaultPolicy.chaos(seed=_SEED, probability=probability)
        )
    else:
        injector = None
    backend = _make_backend(backend_name, injector)
    result = SPARK_APPS[_APP](
        backend,
        injector=injector,
        frame_streams=probability > 0,
    )
    report = injector.report if injector is not None else None
    return result, report


def test_fault_recovery_sweep(benchmark, results_dir):
    def build():
        table = ReportTable(
            f"Fault recovery: {_APP}, fault probability sweep",
            [
                "Backend",
                "Fault %",
                "Total (ms)",
                "Slowdown",
                "Retry (ms)",
                "Retries",
                "Re-execs",
                "Fallbacks",
            ],
        )
        slowdowns = {}
        rows = []
        for backend_name in ("java-builtin", "kryo", "cereal"):
            baseline_ns = None
            for probability in _PROBABILITIES:
                result, report = _run_once(backend_name, probability)
                total_ns = result.total_ns
                if baseline_ns is None:
                    baseline_ns = total_ns
                slowdown = total_ns / baseline_ns
                slowdowns[(backend_name, probability)] = slowdown
                if report is not None:
                    transfer = report.layer("transfer")
                    executor = report.layer("executor")
                    accelerator = report.layer("accelerator")
                    retries = transfer.detected
                    reexecs = executor.recovered
                    fallbacks = accelerator.fallbacks
                else:
                    retries = reexecs = fallbacks = 0
                rows.append(
                    {
                        "backend": backend_name,
                        "fault_probability": probability,
                        "total_ns": total_ns,
                        "slowdown": slowdown,
                        "retry_ns": result.breakdown.retry_ns,
                        "retries": retries,
                        "reexecutions": reexecs,
                        "fallbacks": fallbacks,
                        "faults": report.as_dict() if report is not None else {},
                    }
                )
                table.add_row(
                    backend_name,
                    f"{probability * 100:.0f}%",
                    f"{total_ns / 1e6:.2f}",
                    f"{slowdown:.3f}x",
                    f"{result.breakdown.retry_ns / 1e6:.2f}",
                    str(retries),
                    str(reexecs),
                    str(fallbacks),
                )
        table.add_note(
            "framing enabled for faulted runs; seed fixed, so every row is "
            "exactly reproducible"
        )
        table.show()
        table.save(results_dir, "fault_recovery")
        emit_json(
            results_dir,
            "fault_recovery",
            {"sweep": rows},
            meta={
                "app": _APP,
                "seed": _SEED,
                "probabilities": list(_PROBABILITIES),
            },
            runtime=runtime_snapshot(),
        )
        return slowdowns

    slowdowns = benchmark.pedantic(build, rounds=1, iterations=1)
    for backend_name in ("java-builtin", "kryo", "cereal"):
        assert slowdowns[(backend_name, 0.0)] == 1.0
        # Recovery overhead at 10% faults stays bounded: the model never
        # loses completed work, so slowdown is far below catastrophic.
        assert slowdowns[(backend_name, 0.10)] < 2.0
        # And fault handling is never free once faults actually fire.
        assert slowdowns[(backend_name, 0.10)] >= 1.0
