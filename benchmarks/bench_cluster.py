"""Cluster serving: static vs autoscaled fleets under a flash crowd.

Drives the multi-node serving layer (:mod:`repro.cluster`) — consistent-
hash placement, replicated shard groups, locality-aware routing, reactive
autoscaling — over one shared virtual clock and emits the human table
plus machine-readable ``BENCH_cluster.json``. Four scenario families:

(a) **flash crowd** — a 6x arrival spike over a 2-node baseline, served
    by a reactively autoscaled fleet (2..8 nodes) and by static fleets of
    2/3/4 nodes. The autoscaled run must beat every static fleet whose
    shard-second budget is at least its own on p99: capacity that follows
    demand outperforms the same capacity provisioned flat;
(b) **failover** — injected node-loss faults reap in-flight requests and
    re-execute them on surviving replicas. Zero *accepted* requests may
    be lost, and retried requests keep their original arrival in the SLO
    (re-execution is inside the latency, never hidden by it);
(c) **determinism** — the failover scenario (workload + fault draws +
    failover + retries) replayed end-to-end must serialize to the
    byte-identical report (process-global cache counters stripped);
(d) **trace** — the autoscaled run exports ``TRACE_cluster.json``
    (Chrome trace-event format — ``chrome://tracing`` / Perfetto):
    per-node ``node.up`` lifecycle spans parenting request span trees,
    plus ``autoscale.up`` / ``autoscale.down`` / ``node.failover``
    instants. The file must validate structurally and carry exactly one
    ``request`` span per completed request.

Run standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke

or as part of the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

if __name__ == "__main__":  # allow `python benchmarks/bench_cluster.py`
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _emit import emit_json, emit_trace, runtime_snapshot, trace_json_path  # noqa: E402
from repro.analysis import ReportTable  # noqa: E402
from repro.cluster import (  # noqa: E402
    AutoscalerConfig,
    ClusterConfig,
    ClusterReport,
    SerializationCluster,
)
from repro.faults import FaultInjector, FaultPolicy  # noqa: E402
from repro.obs import Tracer, set_tracer, validate_chrome_trace  # noqa: E402
from repro.service import (  # noqa: E402
    AdmissionConfig,
    DEFAULT_TENANTS,
    FlashCrowdWorkload,
    KeySkew,
    PoissonWorkload,
    RequestMix,
    ServiceCatalog,
    ServiceConfig,
)

_SEED = 0x5E12

# Flash-crowd shape: long 40% pre-spike warm phase at 0.4x-per-node load,
# then half the requests arrive 6x faster. The spike wall-time must dwarf
# the autoscaler's reaction time (detect + cooldown-paced scale-ups +
# provisioning) or reactive capacity cannot win; at the full request
# count the spike spans ~1.6 ms against a ~300 us reaction.
_BASE_FLEET = 2
_BASE_UTIL = 0.4
_SPIKE_FACTOR = 6.0
_SPIKE_START = 0.4
_SPIKE_DURATION = 0.5
_STATIC_FLEETS = (2, 3, 4)

# Shard-second parity slack: a static fleet only enters the comparison
# when its budget is at least this fraction of the autoscaled run's.
_BUDGET_PARITY = 0.98

_RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def _grid(smoke: bool) -> int:
    """Flash-crowd request count (spike wall-time scales with it)."""
    return 6000 if smoke else 13000


def _single_shard_capacity_qps(catalog: ServiceCatalog, mix: RequestMix) -> float:
    mean_ns = catalog.mean_service_ns("serialize", mix.size_weights)
    units = catalog.cereal_config.num_serializer_units
    return units * 1e9 / mean_ns / max(mix.serialize_fraction, 1e-9)


def _service_config(max_outstanding: int = 200_000) -> ServiceConfig:
    return ServiceConfig(
        num_shards=1,
        admission=AdmissionConfig(
            max_outstanding=max_outstanding, enable_degrade=False
        ),
        functional="sample",
        functional_every=256,
    )


def _autoscaler_config() -> AutoscalerConfig:
    return AutoscalerConfig(
        min_nodes=_BASE_FLEET,
        max_nodes=8,
        queue_high_per_node=32.0,
        queue_low_per_node=2.0,
        cooldown_ns=60_000.0,
        provision_delay_ns=120_000.0,
    )


def _row(label: str, report: ClusterReport) -> Dict:
    slo = report.slo
    return {
        "fleet": label,
        "nodes": len(report.nodes),
        "p50_ns": slo.p50(),
        "p99_ns": slo.p99(),
        "p999_ns": slo.p999(),
        "goodput_qps": slo.goodput_qps,
        "completed": slo.completed_requests,
        "shed": slo.shed_requests,
        "shard_seconds": report.shard_seconds,
        "scale_ups": sum(
            1 for a in report.autoscale_actions if a["action"] == "scale-up"
        ),
        "scale_downs": sum(
            1 for a in report.autoscale_actions if a["action"] == "scale-down"
        ),
        "failovers": report.failovers,
        "locality_hits": report.locality_hits,
        "locality_misses": report.locality_misses,
    }


def _flash_crowd(
    catalog: ServiceCatalog, mix: RequestMix, capacity: float, smoke: bool
) -> Tuple[Dict, Tracer]:
    """Autoscaled vs static fleets under the spike; autoscaled run traced."""
    num_requests = _grid(smoke)
    base_qps = _BASE_UTIL * capacity * _BASE_FLEET
    workload = FlashCrowdWorkload(
        qps=base_qps,
        num_requests=num_requests,
        seed=_SEED,
        mix=mix,
        keys=KeySkew(),
        tenants=DEFAULT_TENANTS,
        spike_factor=_SPIKE_FACTOR,
        spike_start_fraction=_SPIKE_START,
        spike_duration_fraction=_SPIKE_DURATION,
    )
    requests = workload.generate(catalog)

    tracer = Tracer(enabled=True, capacity=1 << 18)
    previous = set_tracer(tracer)
    try:
        auto_config = ClusterConfig(
            num_nodes=_BASE_FLEET,
            service=_service_config(),
            control_interval_ns=10_000.0,
            autoscaler=_autoscaler_config(),
        )
        auto_report = SerializationCluster(
            catalog, auto_config, tracer=tracer
        ).run(requests)
    finally:
        set_tracer(previous)

    static_rows: List[Dict] = []
    for nodes in _STATIC_FLEETS:
        config = ClusterConfig(num_nodes=nodes, service=_service_config())
        report = SerializationCluster(catalog, config).run(requests)
        static_rows.append(_row(f"static-{nodes}", report))

    results = {
        "num_requests": num_requests,
        "base_qps": base_qps,
        "spike_start_ns": _SPIKE_START * num_requests / base_qps * 1e9,
        "auto": _row("autoscaled", auto_report),
        "auto_actions": auto_report.autoscale_actions,
        "auto_completed": auto_report.slo.completed_requests,
        "static": static_rows,
    }
    return results, tracer


def _failover_payload(catalog: ServiceCatalog, mix: RequestMix) -> Dict:
    """One deterministic failover run, serialized with caches stripped.

    Node-loss draws fire per control tick per routable node, so the
    probability is calibrated for a handful of losses over the run — the
    surviving replicas must absorb every reaped request.
    """
    workload = PoissonWorkload(
        qps=250_000,
        num_requests=4000,
        seed=7,
        mix=mix,
        keys=KeySkew(),
        tenants=DEFAULT_TENANTS,
    )
    injector = FaultInjector(FaultPolicy(seed=23, node_loss_prob=0.003))
    config = ClusterConfig(
        num_nodes=5,
        control_interval_ns=50_000.0,
        service=ServiceConfig(
            num_shards=1,
            admission=AdmissionConfig(max_outstanding=8192),
        ),
    )
    report = SerializationCluster(catalog, config, injector=injector).run(
        workload.generate(catalog)
    )
    payload = report.as_dict()
    # Process-global plan/layout/bufpool caches stay warm across runs in
    # one process; everything else must replay byte-identically.
    payload["slo"].pop("runtime_caches", None)
    return payload


def run_sweep(smoke: bool = False) -> Tuple[Dict, ReportTable, Tracer]:
    catalog = ServiceCatalog()
    mix = RequestMix()
    capacity = _single_shard_capacity_qps(catalog, mix)

    flash, tracer = _flash_crowd(catalog, mix, capacity, smoke)
    failover = _failover_payload(catalog, mix)
    replay = _failover_payload(catalog, mix)
    canonical = json.dumps(failover, sort_keys=True)
    determinism = {
        "identical": canonical == json.dumps(replay, sort_keys=True),
        "sha256": hashlib.sha256(canonical.encode("utf-8")).hexdigest(),
    }

    table = ReportTable(
        "Cluster serving: flash crowd, static vs autoscaled fleets",
        ["Fleet", "Nodes", "p50 (us)", "p99 (us)", "p999 (us)",
         "Goodput", "Shard-sec", "Scale +/-"],
    )
    for row in [flash["auto"]] + flash["static"]:
        table.add_row(
            row["fleet"],
            str(row["nodes"]),
            f"{row['p50_ns'] / 1e3:.1f}",
            f"{row['p99_ns'] / 1e3:.1f}",
            f"{row['p999_ns'] / 1e3:.1f}",
            f"{row['goodput_qps'] / 1e3:,.0f}k",
            f"{row['shard_seconds']:.5f}",
            f"{row['scale_ups']}/{row['scale_downs']}",
        )
    table.add_note(
        f"{flash['num_requests']} requests, seed {_SEED:#x}, base load "
        f"{_BASE_UTIL:.1f}x per node on {_BASE_FLEET} nodes, spike "
        f"{_SPIKE_FACTOR:g}x over the middle {_SPIKE_DURATION:.0%} of arrivals"
    )
    table.add_note(
        "autoscaled fleet: 2..8 single-shard nodes, queue-depth trigger, "
        "120 us provisioning; shard-sec = provisioned node-seconds"
    )
    fo = failover["cluster"]
    table.add_note(
        f"failover run: {fo['failovers']} node losses, "
        f"{fo['retried_requests']} re-executed, "
        f"{fo['lost_after_failover']} lost"
    )

    payload = {
        "meta": {
            "seed": _SEED,
            "smoke": smoke,
            "capacity_qps": capacity,
            "base_fleet": _BASE_FLEET,
            "base_utilization": _BASE_UTIL,
            "spike_factor": _SPIKE_FACTOR,
            "spike_start_fraction": _SPIKE_START,
            "spike_duration_fraction": _SPIKE_DURATION,
            "static_fleets": list(_STATIC_FLEETS),
            "budget_parity": _BUDGET_PARITY,
        },
        "results": {
            "flash_crowd": flash,
            "failover": failover,
            "determinism": determinism,
        },
    }
    return payload, table, tracer


# -- trajectory checks --------------------------------------------------------------


def check_properties(payload: Dict) -> Dict[str, Dict]:
    checks: Dict[str, Dict] = {}
    flash = payload["results"]["flash_crowd"]
    auto = flash["auto"]

    # (a) the autoscaled fleet beats every static fleet of equal-or-larger
    # shard-second budget on p99 — elastic capacity wins at equal cost.
    budget = auto["shard_seconds"] * payload["meta"]["budget_parity"]
    peers = [r for r in flash["static"] if r["shard_seconds"] >= budget]
    ok = bool(peers) and all(auto["p99_ns"] < r["p99_ns"] for r in peers)
    checks["autoscaled_beats_equal_budget_static"] = {
        "ok": ok,
        "detail": (
            f"auto p99 {auto['p99_ns'] / 1e3:.1f} us at "
            f"{auto['shard_seconds']:.5f} shard-sec vs "
            + (
                ", ".join(
                    f"{r['fleet']} {r['p99_ns'] / 1e3:.1f} us at "
                    f"{r['shard_seconds']:.5f}"
                    for r in peers
                )
                or "no static fleet at parity budget"
            )
        ),
    }

    # The controller must react to the spike, not to the warm phase: the
    # first scale-up lands after the crowd arrives, and the fleet contracts
    # again once it passes.
    ups = [a for a in flash["auto_actions"] if a["action"] == "scale-up"]
    first_up = ups[0]["ts_ns"] if ups else 0.0
    reacts = bool(ups) and first_up >= 0.5 * flash["spike_start_ns"]
    # The post-spike tail in the smoke grid ends before the drained fleet
    # crosses the scale-down trigger, so contraction only gates full runs.
    contracts = auto["scale_downs"] > 0 or payload["meta"]["smoke"]
    checks["autoscaler_reacts_to_spike"] = {
        "ok": reacts and contracts,
        "detail": (
            f"{len(ups)} scale-ups (first at {first_up / 1e3:.0f} us, spike "
            f"at {flash['spike_start_ns'] / 1e3:.0f} us), "
            f"{auto['scale_downs']} scale-downs"
        ),
    }

    # Replicated placement keeps most dispatches inside the tenant's zone.
    hits, misses = auto["locality_hits"], auto["locality_misses"]
    checks["locality_routing_effective"] = {
        "ok": hits > misses,
        "detail": f"{hits} same-zone dispatches vs {misses} cross-zone",
    }

    # (b) failover loses zero accepted requests: every record is accounted
    # for, re-executions happened, and none of them fell off the fleet.
    fo = payload["results"]["failover"]
    cluster = fo["cluster"]
    requests = fo["slo"]["requests"]
    accounted = (
        requests["completed"] + requests["shed"] + requests["rejected"]
        == requests["total"]
    )
    ok = (
        cluster["failovers"] > 0
        and cluster["retried_requests"] > 0
        and requests["retried"] > 0
        and cluster["lost_after_failover"] == 0
        and accounted
    )
    checks["failover_zero_accepted_loss"] = {
        "ok": ok,
        "detail": (
            f"{cluster['failovers']} node losses, "
            f"{cluster['retried_requests']} re-executed, "
            f"{cluster['lost_after_failover']} lost, requests {requests}"
        ),
    }

    # (c) the failover scenario replays byte-identically.
    det = payload["results"]["determinism"]
    checks["deterministic_replay"] = {
        "ok": det["identical"],
        "detail": f"canonical report sha256 {det['sha256'][:16]}…",
    }
    return checks


def trace_checks(payload: Dict, trace_path: str) -> Dict[str, Dict]:
    """Gate the exported cluster trace: structure + span census."""
    checks: Dict[str, Dict] = {}
    with open(trace_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    try:
        counts = validate_chrome_trace(document)
        ok = counts["X"] > 0 and counts["M"] > 0
        detail = f"event counts {counts}"
    except ValueError as error:
        ok, detail = False, str(error)
    checks["trace_exports_and_validates"] = {"ok": ok, "detail": detail}

    events = document["traceEvents"]
    node_spans = sum(
        1 for e in events if e.get("ph") == "X" and e.get("name") == "node.up"
    )
    request_spans = sum(
        1 for e in events if e.get("ph") == "X" and e.get("name") == "request"
    )
    instants = {
        e["name"]
        for e in events
        if e.get("ph") in ("i", "I") and e.get("name", "").startswith("autoscale.")
    }
    flash = payload["results"]["flash_crowd"]
    expected_nodes = flash["auto"]["nodes"]
    completed = flash["auto_completed"]
    ok = (
        node_spans == expected_nodes
        and request_spans == completed
        and "autoscale.up" in instants
    )
    checks["trace_census_matches_cluster"] = {
        "ok": ok,
        "detail": (
            f"{node_spans} node.up spans for {expected_nodes} nodes, "
            f"{request_spans} request spans for {completed} completed, "
            f"autoscale instants {sorted(instants)}"
        ),
    }
    return checks


def _emit(
    payload: Dict, table: ReportTable, tracer: Tracer, results_dir: str
) -> Dict[str, Dict]:
    table.show()
    table.save(results_dir, "cluster_serving")
    trace_path = emit_trace(
        results_dir,
        "cluster",
        tracer,
        metadata={"seed": _SEED, "run": "flash_crowd_autoscaled"},
    )
    checks = check_properties(payload)
    checks.update(trace_checks(payload, trace_path))
    emit_json(
        results_dir,
        "cluster",
        payload["results"],
        meta=payload["meta"],
        checks=checks,
        runtime=runtime_snapshot(),
    )
    return checks


# -- pytest entry point ----------------------------------------------------------------


def test_cluster_serving(benchmark, results_dir):
    def build():
        payload, table, tracer = run_sweep(smoke=False)
        return payload, _emit(payload, table, tracer, results_dir)

    _, checks = benchmark.pedantic(build, rounds=1, iterations=1)
    for name, outcome in checks.items():
        assert outcome["ok"], f"{name}: {outcome['detail']}"


# -- CLI entry point (CI smoke job) ------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller flash crowd for CI (< 60 s)",
    )
    parser.add_argument("--results-dir", default=_RESULTS_DIR)
    args = parser.parse_args(argv)
    payload, table, tracer = run_sweep(smoke=args.smoke)
    checks = _emit(payload, table, tracer, args.results_dir)
    failed = {name: c for name, c in checks.items() if not c["ok"]}
    for name, outcome in checks.items():
        status = "ok" if outcome["ok"] else "FAIL"
        print(f"check {name}: {status} — {outcome['detail']}")
    if failed:
        print(f"{len(failed)} check(s) failed", file=sys.stderr)
        return 1
    print(f"BENCH_cluster.json written under {args.results_dir}")
    print(f"TRACE_cluster.json written to {trace_json_path(args.results_dir, 'cluster')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
