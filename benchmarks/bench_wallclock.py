"""Wall-clock performance harness with regression gates.

Unlike the figure benches (which report *simulated* time), this bench
measures how fast the reproduction itself runs: the real seconds the
Python kernels burn. It covers the three layers the integer-bitstream
fast path rewrote:

1. **Packing kernels** — the Section IV-B pack/unpack round trip, fast
   word-level kernels vs the preserved per-bit oracle in
   :mod:`repro.formats.slow_reference`. Output bytes are asserted
   identical; the speedup is the tentpole metric and must stay >= 3x.
2. **Format codecs** — encode/decode MB/s and objects/s for all four
   serializers over a seeded microbenchmark graph.
3. **Compiled plans** — plan-on vs plan-off serialize/deserialize for the
   java/kryo/cereal codecs on a cache-warm workload, asserted
   byte-identical; the gated serialize speedups must stay >= 2x, the
   gated deserialize speedups carry their own floor, and the plan-cache
   hit rate must show the cache actually warming.
4. **Codegen kernels** — codegen-on vs plan-on vs interpreter for the
   same codecs, asserted byte-identical across all three tiers. The
   generated straight-line kernels must keep the >= 2x serialize floor
   against the interpreter and stay ahead of the op-interpreting plan
   tier; the warm codegen-cache hit rate must be >= 99%.
5. **Service layer** — simulated-nanoseconds advanced per wall-clock
   second by the analytic event-loop server.

Gating policy: absolute MB/s depends on the host, so CI gates only on
machine-portable *ratios* (fast vs slow measured back-to-back on the same
machine) against ``benchmarks/wallclock_baseline.json`` with 20%
tolerance, plus the hard >= 3x tentpole floor. Absolute numbers are
recorded informationally in ``BENCH_wallclock.json``.

Run standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_wallclock.py --smoke

refresh the checked-in ratio baseline::

    PYTHONPATH=src python benchmarks/bench_wallclock.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

if __name__ == "__main__":  # allow `python benchmarks/bench_wallclock.py`
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _emit import emit_json, runtime_snapshot  # noqa: E402
from repro.common.bufpool import pool_stats, reset_pool  # noqa: E402
from repro.obs import Tracer, get_registry, set_tracer  # noqa: E402
from repro.formats import (  # noqa: E402
    CerealSerializer,
    ClassRegistration,
    JavaSerializer,
    KryoSerializer,
    SkywaySerializer,
    graphs_equivalent,
)
from repro.formats import codegen  # noqa: E402
from repro.formats import packing  # noqa: E402
from repro.formats import plans  # noqa: E402
from repro.formats import slow_reference as slow  # noqa: E402
from repro.jvm import Heap  # noqa: E402
from repro.service import (  # noqa: E402
    PoissonWorkload,
    SerializationServer,
    ServiceCatalog,
    ServiceConfig,
)
from repro.workloads.datagen import DeterministicRandom  # noqa: E402
from repro.workloads.micro import MicrobenchConfig, build_tree_bench  # noqa: E402

_SEED = 0xB175
_SPEEDUP_FLOOR = 3.0  # tentpole: fast packing round trip must stay >= 3x
_PLAN_SPEEDUP_FLOOR = 2.0  # compiled-plan serialize must stay >= 2x where gated
_PLAN_DESERIALIZE_FLOOR = 1.2  # compiled-plan deserialize floor where gated
_PLAN_GATED_FORMATS = ("java", "kryo")  # cereal's interpreter is already bulk
_CODEGEN_SPEEDUP_FLOOR = 2.0  # codegen serialize vs the interpreter oracle
_CODEGEN_VS_PLAN_FLOOR = 1.05  # codegen must never fall behind the plan tier
_CODEGEN_WARM_HIT_RATE = 0.99  # warm codegen-cache hit rate floor
_REGRESSION_TOLERANCE = 0.20  # ratios may drift 20% below baseline, no more
_OBS_OVERHEAD_BUDGET = 1.05  # obs-instrumented serialize <= 1.05x uninstrumented

_HERE = os.path.dirname(os.path.abspath(__file__))
_RESULTS_DIR = os.path.join(_HERE, "results")
_BASELINE_PATH = os.path.join(_HERE, "wallclock_baseline.json")


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Minimum wall time of ``repeats`` runs (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - begin)
    return best


def _round(value: float, digits: int = 3) -> float:
    return float(f"{value:.{digits}g}")


# ---------------------------------------------------------------- packing kernels


def _packing_inputs(smoke: bool) -> Tuple[List[int], List[Tuple[int, int]]]:
    rng = DeterministicRandom(seed=_SEED)
    item_count = 4_000 if smoke else 20_000
    bitmap_count = 1_000 if smoke else 5_000
    values = [
        rng.randint(0, 1 << rng.randint(1, 34)) for _ in range(item_count)
    ]
    bitmaps = []
    for _ in range(bitmap_count):
        width = rng.randint(3, 80)
        bitmaps.append((rng.randint(0, (1 << width) - 1), width))
    return values, bitmaps


def bench_packing(smoke: bool) -> Dict[str, object]:
    values, bitmaps = _packing_inputs(smoke)
    bitmap_lists = [
        [(word >> (width - 1 - i)) & 1 for i in range(width)]
        for word, width in bitmaps
    ]
    repeats = 3 if smoke else 5

    # Byte identity first — a fast path that drifts is not a fast path.
    fast_items = packing.pack_items(values)
    slow_items = slow.slow_pack_items(values)
    fast_maps = packing.pack_bitmap_words(bitmaps)
    slow_maps = slow.slow_pack_bitmaps(bitmap_lists)
    byte_identical = (
        fast_items.data == slow_items.data
        and fast_items.end_map == slow_items.end_map
        and fast_maps.data == slow_maps.data
        and fast_maps.end_map == slow_maps.end_map
        and packing.unpack_items(fast_items) == values
        and packing.unpack_bitmap_words(fast_maps) == bitmaps
    )

    fast_item_s = _best_of(
        lambda: packing.unpack_items(packing.pack_items(values)), repeats
    )
    slow_item_s = _best_of(
        lambda: slow.slow_unpack_items(slow.slow_pack_items(values)), repeats
    )
    fast_map_s = _best_of(
        lambda: packing.unpack_bitmap_words(packing.pack_bitmap_words(bitmaps)),
        repeats,
    )
    slow_map_s = _best_of(
        lambda: slow.slow_unpack_bitmaps(slow.slow_pack_bitmaps(bitmap_lists)),
        repeats,
    )
    packed_bytes = fast_items.total_bytes + fast_maps.total_bytes
    return {
        "byte_identical": byte_identical,
        "item_count": len(values),
        "bitmap_count": len(bitmaps),
        "packed_bytes": packed_bytes,
        "packing_speedup": _round(slow_item_s / fast_item_s),
        "bitmap_speedup": _round(slow_map_s / fast_map_s),
        "roundtrip_speedup": _round(
            (slow_item_s + slow_map_s) / (fast_item_s + fast_map_s)
        ),
        "fast_items_per_sec": _round(len(values) / fast_item_s),
        "slow_items_per_sec": _round(len(values) / slow_item_s),
    }


# ---------------------------------------------------------------- format codecs


def _build_payload(smoke: bool):
    heap = Heap()
    config = MicrobenchConfig(
        name="wallclock",
        shape="tree",
        variant="bench",
        paper_objects=96 if smoke else 384,
        scale=1,
        fanout=2,
    )
    root = build_tree_bench(heap, config)
    registration = ClassRegistration()
    for klass in heap.registry:
        registration.register(klass)
    return heap, root, registration


def bench_formats(smoke: bool) -> Dict[str, Dict[str, float]]:
    heap, root, registration = _build_payload(smoke)
    serializers = {
        "java": JavaSerializer(),
        "kryo": KryoSerializer(registration),
        "skyway": SkywaySerializer(registration),
        "cereal": CerealSerializer(registration),
    }
    repeats = 3 if smoke else 5
    out: Dict[str, Dict[str, float]] = {}
    for name, serializer in serializers.items():
        result = serializer.serialize(root)
        stream = result.stream
        rebuilt = serializer.deserialize(
            stream, Heap(registry=heap.registry)
        ).root
        if not graphs_equivalent(root, rebuilt):
            raise AssertionError(f"{name} round trip failed in wallclock bench")
        ser_s = _best_of(lambda: serializer.serialize(root), repeats)
        de_s = _best_of(
            lambda: serializer.deserialize(stream, Heap(registry=heap.registry)),
            repeats,
        )
        objects = stream.object_count
        out[name] = {
            "stream_bytes": stream.size_bytes,
            "serialize_mb_per_sec": _round(stream.size_bytes / ser_s / 1e6),
            "deserialize_mb_per_sec": _round(stream.size_bytes / de_s / 1e6),
            "serialize_objects_per_sec": _round(objects / ser_s),
            "deserialize_objects_per_sec": _round(objects / de_s),
        }
    return out


# ---------------------------------------------------------------- compiled plans


def bench_plans(smoke: bool) -> Dict[str, object]:
    """Plan-on vs plan-off codec throughput on a cache-warm micro workload.

    Byte identity between the two paths is asserted per format before any
    timing; the serialize speedups for the gated formats are the headline
    metric of the plan compiler and must stay >= 2x.
    """
    heap, root, registration = _build_payload(smoke)
    plans.reset_plan_cache()
    reset_pool()
    pairs = {
        "java": (JavaSerializer(), JavaSerializer(use_plans=False)),
        "kryo": (
            KryoSerializer(registration),
            KryoSerializer(registration, use_plans=False),
        ),
        "cereal": (
            CerealSerializer(registration),
            CerealSerializer(registration, use_plans=False),
        ),
    }
    repeats = 3 if smoke else 5
    formats: Dict[str, Dict[str, float]] = {}
    byte_identical = True
    for name, (planned, interp) in pairs.items():
        stream = planned.serialize(root).stream  # compiles + warms the plans
        byte_identical = byte_identical and (
            stream.data == interp.serialize(root).stream.data
        )
        plan_ser_s = _best_of(lambda: planned.serialize(root), repeats)
        interp_ser_s = _best_of(lambda: interp.serialize(root), repeats)
        plan_de_s = _best_of(
            lambda: planned.deserialize(stream, Heap(registry=heap.registry)),
            repeats,
        )
        interp_de_s = _best_of(
            lambda: interp.deserialize(stream, Heap(registry=heap.registry)),
            repeats,
        )
        mb = stream.size_bytes / 1e6
        formats[name] = {
            "serialize_speedup": _round(interp_ser_s / plan_ser_s),
            "deserialize_speedup": _round(interp_de_s / plan_de_s),
            "plan_on_serialize_mb_per_sec": _round(mb / plan_ser_s),
            "plan_off_serialize_mb_per_sec": _round(mb / interp_ser_s),
            "plan_on_deserialize_mb_per_sec": _round(mb / plan_de_s),
            "plan_off_deserialize_mb_per_sec": _round(mb / interp_de_s),
        }
    return {
        "byte_identical": byte_identical,
        "formats": formats,
        "plan_cache": plans.plan_cache_stats(),
        "buffer_pool": pool_stats(),
    }


# ---------------------------------------------------------------- codegen kernels


def _interleaved_best(thunks: List[Callable[[], object]], repeats: int) -> List[float]:
    """Per-thunk minimum wall time over ``repeats`` interleaved rounds.

    The variants are timed round-robin within each round so CPU frequency
    drift hits all of them equally; timing each variant in its own
    back-to-back block can skew a ~1.3x ratio well past the regression
    tolerance on a thermally busy host.
    """
    best = [float("inf")] * len(thunks)
    for _ in range(repeats):
        for index, fn in enumerate(thunks):
            begin = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - begin
            if elapsed < best[index]:
                best[index] = elapsed
    return best


def bench_codegen(smoke: bool) -> Dict[str, object]:
    """Codegen-on vs plan-on vs interpreter throughput, cache-warm.

    All three tiers are asserted byte-identical before any timing. The
    generated kernels inherit the plan tier's >= 2x serialize floor
    against the interpreter oracle and must additionally stay ahead of
    the plan tier itself (the op dispatch + per-op counter work they
    eliminate); the incremental codegen-vs-plan ratios are also
    regression-gated against the checked-in baseline. The warm-cache
    section re-serializes the same shapes in a loop and demands a >= 99%
    codegen-cache hit rate — kernels must compile once and be reused.
    """
    heap, root, registration = _build_payload(smoke)
    codegen.reset_codegen_cache()
    plans.reset_plan_cache()
    reset_pool()
    triples = {
        "java": (
            JavaSerializer(use_codegen=True),
            JavaSerializer(),
            JavaSerializer(use_plans=False),
        ),
        "kryo": (
            KryoSerializer(registration, use_codegen=True),
            KryoSerializer(registration),
            KryoSerializer(registration, use_plans=False),
        ),
        "cereal": (
            CerealSerializer(registration, use_codegen=True),
            CerealSerializer(registration),
            CerealSerializer(registration, use_plans=False),
        ),
    }
    repeats = 5 if smoke else 9
    registry = heap.registry
    formats: Dict[str, Dict[str, float]] = {}
    streams = {}
    byte_identical = True
    for name, (generated, planned, interp) in triples.items():
        stream = generated.serialize(root).stream  # compiles kernels + plans
        streams[name] = stream
        byte_identical = byte_identical and (
            stream.data == planned.serialize(root).stream.data
            and stream.data == interp.serialize(root).stream.data
        )
        gen_ser, plan_ser, interp_ser = _interleaved_best(
            [
                lambda: generated.serialize(root),
                lambda: planned.serialize(root),
                lambda: interp.serialize(root),
            ],
            repeats,
        )
        gen_de, plan_de, interp_de = _interleaved_best(
            [
                lambda: generated.deserialize(stream, Heap(registry=registry)),
                lambda: planned.deserialize(stream, Heap(registry=registry)),
                lambda: interp.deserialize(stream, Heap(registry=registry)),
            ],
            repeats,
        )
        mb = stream.size_bytes / 1e6
        formats[name] = {
            "serialize_speedup_vs_interp": _round(interp_ser / gen_ser),
            "serialize_speedup_vs_plan": _round(plan_ser / gen_ser),
            "deserialize_speedup_vs_interp": _round(interp_de / gen_de),
            "deserialize_speedup_vs_plan": _round(plan_de / gen_de),
            "codegen_serialize_mb_per_sec": _round(mb / gen_ser),
            "plan_serialize_mb_per_sec": _round(mb / plan_ser),
            "interp_serialize_mb_per_sec": _round(mb / interp_ser),
            "codegen_deserialize_mb_per_sec": _round(mb / gen_de),
            "plan_deserialize_mb_per_sec": _round(mb / plan_de),
            "interp_deserialize_mb_per_sec": _round(mb / interp_de),
        }

    # Warm-cache window: every kernel is already compiled, so a sustained
    # serialize/deserialize loop must be all cache hits.
    before = codegen.codegen_cache_stats()
    warm_calls = 64 if smoke else 128
    for _ in range(warm_calls):
        for name, (generated, _planned, _interp) in triples.items():
            generated.serialize(root)
            generated.deserialize(streams[name], Heap(registry=registry))
    stats = codegen.codegen_cache_stats()
    warm_probes = (stats["hits"] + stats["misses"]) - (
        before["hits"] + before["misses"]
    )
    warm_hits = stats["hits"] - before["hits"]
    return {
        "byte_identical": byte_identical,
        "formats": formats,
        "codegen_cache": stats,
        "warm_window_calls": warm_calls,
        "warm_window_hit_rate": _round(
            warm_hits / warm_probes if warm_probes else 0.0, 6
        ),
    }


# ---------------------------------------------------------------- obs overhead


def bench_obs(smoke: bool) -> Dict[str, object]:
    """Cost of the observability layer on the serialize hot path.

    ``obs_off`` is the production default — tracer disabled, registry
    histograms disabled — where every obs hook is one attribute check.
    ``obs_on`` runs the same serialize under an enabled tracer with a
    per-call span plus a per-call latency histogram observation, i.e. the
    full instrumentation a traced run pays. Because the disabled hooks do
    a strict subset of the enabled work, gating the *enabled* ratio under
    the 5% budget (``obs_overhead_budget``) bounds the disabled-mode cost
    on the serialize MB/s ratios by the same margin; the ratio also lands
    in ``wallclock_baseline.json`` like every other gated ratio.
    """
    heap, root, registration = _build_payload(smoke)
    serializer = CerealSerializer(registration)
    serializer.serialize(root)  # warm plans, layout cache, arenas
    repeats = 9 if smoke else 11
    calls = 4  # serializes per timed sample
    registry = get_registry()
    tracer = Tracer(enabled=True, capacity=1 << 14)
    latency = registry.histogram("bench.serialize_wall_ns")

    def plain() -> None:
        for _ in range(calls):
            serializer.serialize(root)

    def traced() -> None:
        for _ in range(calls):
            with tracer.span("bench.serialize", category="bench"):
                begin = time.perf_counter_ns()
                serializer.serialize(root)
                latency.observe(time.perf_counter_ns() - begin)

    # Interleave the two variants sample-by-sample so CPU frequency drift
    # hits both equally — back-to-back blocks can skew a 1% effect by 5%.
    off_s = on_s = float("inf")
    previous = set_tracer(tracer)
    try:
        for _ in range(repeats):
            registry.disable()
            begin = time.perf_counter()
            plain()
            off_s = min(off_s, time.perf_counter() - begin)
            registry.enable()
            begin = time.perf_counter()
            traced()
            on_s = min(on_s, time.perf_counter() - begin)
    finally:
        registry.enable()
        set_tracer(previous)
    ratio = on_s / off_s
    return {
        "obs_off_sec": _round(off_s),
        "obs_on_sec": _round(on_s),
        "overhead_ratio": _round(ratio),
        "disabled_vs_enabled_speedup": _round(1.0 / ratio),
        "spans_recorded": tracer.spans_recorded,
        "latency_observations": latency.count,
    }


# ---------------------------------------------------------------- service layer


def bench_service(smoke: bool) -> Dict[str, float]:
    begin = time.perf_counter()
    catalog = ServiceCatalog()
    build_s = time.perf_counter() - begin
    config = ServiceConfig(num_shards=2, engine="analytic", functional="off")
    workload = PoissonWorkload(
        qps=120_000.0,
        num_requests=1_000 if smoke else 5_000,
        seed=_SEED,
    )
    requests = workload.generate(catalog)
    server = SerializationServer(catalog, config)
    begin = time.perf_counter()
    report = server.run(requests)
    run_s = time.perf_counter() - begin
    sim_ns = max(record.finish_ns for record in report.records)
    return {
        "requests": len(requests),
        "catalog_build_sec": _round(build_s),
        "run_sec": _round(run_s),
        "sim_seconds_per_wall_second": _round(sim_ns / 1e9 / run_s),
        "requests_per_wall_second": _round(len(requests) / run_s),
    }


# ---------------------------------------------------------------- gates


def load_baseline() -> Dict[str, Dict[str, float]]:
    """The per-mode ratio baselines: ``{"full": {...}, "smoke": {...}}``.

    Smoke inputs are small enough that per-call fixed overheads shift the
    ratios, so each mode gates against a baseline recorded in that mode.
    A legacy flat file (metrics at top level) is treated as full-mode.
    """
    if not os.path.exists(_BASELINE_PATH):
        return {}
    with open(_BASELINE_PATH, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if "packing_speedup" in document:  # legacy flat format
        return {"full": document}
    return document


def evaluate_checks(
    packing_results: Dict[str, object],
    plan_results: Dict[str, object],
    codegen_results: Dict[str, object],
    obs_results: Dict[str, object],
    baseline: Optional[Dict[str, float]],
    smoke: bool = False,
) -> Dict[str, Dict[str, object]]:
    checks: Dict[str, Dict[str, object]] = {}
    checks["packing_byte_identical"] = {
        "ok": bool(packing_results["byte_identical"]),
        "detail": "fast word-level kernels emit the oracle's exact bytes",
    }
    speedup = float(packing_results["packing_speedup"])  # type: ignore[arg-type]
    checks["packing_speedup_floor"] = {
        "ok": speedup >= _SPEEDUP_FLOOR,
        "detail": f"round-trip speedup {speedup:.2f}x vs floor {_SPEEDUP_FLOOR}x",
    }
    checks["plans_byte_identical"] = {
        "ok": bool(plan_results["byte_identical"]),
        "detail": "compiled plans emit the interpreter's exact bytes",
    }
    plan_formats = plan_results["formats"]  # type: ignore[assignment]
    gated = {
        name: float(plan_formats[name]["serialize_speedup"])
        for name in _PLAN_GATED_FORMATS
    }
    checks["plan_serialize_speedup_floor"] = {
        "ok": all(v >= _PLAN_SPEEDUP_FLOOR for v in gated.values()),
        "detail": ", ".join(
            f"{name} {v:.2f}x" for name, v in sorted(gated.items())
        ) + f" vs floor {_PLAN_SPEEDUP_FLOOR}x",
    }
    de_gated = {
        name: float(plan_formats[name]["deserialize_speedup"])
        for name in _PLAN_GATED_FORMATS
    }
    checks["plan_deserialize_speedup_floor"] = {
        "ok": all(v >= _PLAN_DESERIALIZE_FLOOR for v in de_gated.values()),
        "detail": ", ".join(
            f"{name} {v:.2f}x" for name, v in sorted(de_gated.items())
        ) + f" vs floor {_PLAN_DESERIALIZE_FLOOR}x",
    }
    cache = plan_results["plan_cache"]  # type: ignore[assignment]
    hit_rate = float(cache["hit_rate"])
    checks["plan_cache_warm"] = {
        "ok": hit_rate >= 0.8 and cache["entries"] > 0,
        "detail": (
            f"plan cache hit rate {hit_rate:.1%} over "
            f"{cache['hits'] + cache['misses']} probes, "
            f"{cache['entries']} entries"
        ),
    }
    checks["codegen_byte_identical"] = {
        "ok": bool(codegen_results["byte_identical"]),
        "detail": "generated kernels emit the plan and interpreter exact bytes",
    }
    cg_formats = codegen_results["formats"]  # type: ignore[assignment]
    cg_vs_interp = {
        name: float(cg_formats[name]["serialize_speedup_vs_interp"])
        for name in _PLAN_GATED_FORMATS
    }
    checks["codegen_serialize_speedup_floor"] = {
        "ok": all(v >= _CODEGEN_SPEEDUP_FLOOR for v in cg_vs_interp.values()),
        "detail": ", ".join(
            f"{name} {v:.2f}x" for name, v in sorted(cg_vs_interp.items())
        ) + f" vs interpreter, floor {_CODEGEN_SPEEDUP_FLOOR}x",
    }
    cg_vs_plan = {
        name: float(cg_formats[name]["serialize_speedup_vs_plan"])
        for name in _PLAN_GATED_FORMATS
    }
    vs_plan_detail = ", ".join(
        f"{name} {v:.2f}x" for name, v in sorted(cg_vs_plan.items())
    )
    if smoke:
        # The smoke payload is small enough that per-call fixed costs
        # (cell-table build, kernel lookups) dominate the per-object win,
        # so the hard floor only applies in full mode; the per-mode
        # baseline regression still tracks the smoke ratios.
        checks["codegen_vs_plan_serialize_floor"] = {
            "ok": True,
            "detail": (
                f"{vs_plan_detail} vs plan tier (informational in smoke "
                f"mode; floor {_CODEGEN_VS_PLAN_FLOOR}x gates full runs)"
            ),
        }
    else:
        checks["codegen_vs_plan_serialize_floor"] = {
            "ok": all(v >= _CODEGEN_VS_PLAN_FLOOR for v in cg_vs_plan.values()),
            "detail": (
                f"{vs_plan_detail} vs plan tier, floor "
                f"{_CODEGEN_VS_PLAN_FLOOR}x"
            ),
        }
    cg_cache = codegen_results["codegen_cache"]  # type: ignore[assignment]
    warm_window = float(codegen_results["warm_window_hit_rate"])  # type: ignore[arg-type]
    checks["codegen_cache_warm"] = {
        "ok": warm_window >= _CODEGEN_WARM_HIT_RATE and cg_cache["entries"] > 0,
        "detail": (
            f"warm-window hit rate {warm_window:.2%} vs floor "
            f"{_CODEGEN_WARM_HIT_RATE:.0%}; overall "
            f"{float(cg_cache['hit_rate']):.2%} over "
            f"{cg_cache['hits'] + cg_cache['misses']} probes "
            f"({cg_cache['entries']} kernels incl. cold compiles)"
        ),
    }
    overhead = float(obs_results["overhead_ratio"])  # type: ignore[arg-type]
    checks["obs_overhead_budget"] = {
        "ok": overhead <= _OBS_OVERHEAD_BUDGET,
        "detail": (
            f"obs-instrumented serialize {overhead:.3f}x the uninstrumented "
            f"time (budget {_OBS_OVERHEAD_BUDGET:.2f}x; disabled hooks are a "
            f"strict subset of this cost)"
        ),
    }
    if baseline is None:
        checks["baseline_regression"] = {
            "ok": True,
            "detail": "no wallclock_baseline.json; run --update-baseline",
        }
        return checks
    failures = []
    measurements: Dict[str, float] = {
        "packing_speedup": float(packing_results["packing_speedup"]),  # type: ignore[arg-type]
        "bitmap_speedup": float(packing_results["bitmap_speedup"]),  # type: ignore[arg-type]
    }
    for name in _PLAN_GATED_FORMATS:
        measurements[f"plan_serialize_speedup_{name}"] = gated[name]
        measurements[f"plan_deserialize_speedup_{name}"] = de_gated[name]
        measurements[f"codegen_serialize_speedup_{name}"] = cg_vs_plan[name]
        measurements[f"codegen_deserialize_speedup_{name}"] = float(
            cg_formats[name]["deserialize_speedup_vs_plan"]
        )
    measurements["obs_disabled_vs_enabled_speedup"] = float(
        obs_results["disabled_vs_enabled_speedup"]  # type: ignore[arg-type]
    )
    for metric, measured in measurements.items():
        reference = baseline.get(metric)
        if reference is None:
            continue
        floor = reference * (1.0 - _REGRESSION_TOLERANCE)
        if measured < floor:
            failures.append(
                f"{metric} {measured:.2f}x < {floor:.2f}x "
                f"(baseline {reference:.2f}x - {_REGRESSION_TOLERANCE:.0%})"
            )
    checks["baseline_regression"] = {
        "ok": not failures,
        "detail": "; ".join(failures) if failures else (
            "ratio metrics within 20% of checked-in baseline"
        ),
    }
    return checks


# ---------------------------------------------------------------- driver


def run(smoke: bool = False, update_baseline: bool = False) -> bool:
    packing_results = bench_packing(smoke)
    format_results = bench_formats(smoke)
    plan_results = bench_plans(smoke)
    codegen_results = bench_codegen(smoke)
    obs_results = bench_obs(smoke)
    service_results = bench_service(smoke)

    plan_formats = plan_results["formats"]
    cg_formats = codegen_results["formats"]
    mode = "smoke" if smoke else "full"
    if update_baseline:
        document = load_baseline()
        baseline = {
            "packing_speedup": packing_results["packing_speedup"],
            "bitmap_speedup": packing_results["bitmap_speedup"],
            "obs_disabled_vs_enabled_speedup": obs_results[
                "disabled_vs_enabled_speedup"
            ],
        }
        for name in _PLAN_GATED_FORMATS:
            baseline[f"plan_serialize_speedup_{name}"] = plan_formats[name][
                "serialize_speedup"
            ]
            baseline[f"plan_deserialize_speedup_{name}"] = plan_formats[name][
                "deserialize_speedup"
            ]
            baseline[f"codegen_serialize_speedup_{name}"] = cg_formats[name][
                "serialize_speedup_vs_plan"
            ]
            baseline[f"codegen_deserialize_speedup_{name}"] = cg_formats[name][
                "deserialize_speedup_vs_plan"
            ]
        document[mode] = baseline
        with open(_BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated ({mode}): {_BASELINE_PATH}")
    checks = evaluate_checks(
        packing_results,
        plan_results,
        codegen_results,
        obs_results,
        load_baseline().get(mode),
        smoke=smoke,
    )

    emit_json(
        _RESULTS_DIR,
        "wallclock",
        results={
            "packing": packing_results,
            "formats": format_results,
            "plans": plan_results,
            "codegen": codegen_results,
            "obs": obs_results,
            "service": service_results,
        },
        meta={
            "seed": _SEED,
            "smoke": smoke,
            "note": (
                "absolute MB/s and obj/s are host-dependent and informational; "
                "CI gates only on same-machine fast-vs-slow ratios"
            ),
        },
        checks=checks,
        runtime=runtime_snapshot(),
    )

    print("wallclock bench")
    print(
        f"  packing: {packing_results['packing_speedup']}x items, "
        f"{packing_results['bitmap_speedup']}x bitmaps, "
        f"byte_identical={packing_results['byte_identical']}"
    )
    for name, metrics in sorted(format_results.items()):
        print(
            f"  {name:7s} ser {metrics['serialize_mb_per_sec']:>8} MB/s  "
            f"de {metrics['deserialize_mb_per_sec']:>8} MB/s  "
            f"({metrics['serialize_objects_per_sec']} obj/s)"
        )
    cache = plan_results["plan_cache"]
    for name, metrics in sorted(plan_formats.items()):
        print(
            f"  plans:{name:7s} ser {metrics['serialize_speedup']:>5}x "
            f"({metrics['plan_off_serialize_mb_per_sec']} -> "
            f"{metrics['plan_on_serialize_mb_per_sec']} MB/s)  "
            f"de {metrics['deserialize_speedup']:>5}x"
        )
    print(
        f"  plan cache: {cache['hit_rate']:.1%} hit rate, "
        f"{cache['entries']} entries; arena high water "
        f"{plan_results['buffer_pool']['high_water_mark_bytes']} B"
    )
    for name, metrics in sorted(cg_formats.items()):
        print(
            f"  codegen:{name:7s} ser {metrics['serialize_speedup_vs_plan']:>5}x "
            f"vs plan / {metrics['serialize_speedup_vs_interp']:>5}x vs interp "
            f"({metrics['plan_serialize_mb_per_sec']} -> "
            f"{metrics['codegen_serialize_mb_per_sec']} MB/s)  "
            f"de {metrics['deserialize_speedup_vs_plan']:>5}x vs plan"
        )
    cg_cache = codegen_results["codegen_cache"]
    print(
        f"  codegen cache: {cg_cache['hit_rate']:.2%} hit rate, "
        f"{cg_cache['entries']} kernels, "
        f"{cg_cache['compile_ns'] / 1e6:.1f} ms compiling; warm window "
        f"{codegen_results['warm_window_hit_rate']:.2%} over "
        f"{codegen_results['warm_window_calls']} calls"
    )
    print(
        f"  obs: instrumented serialize {obs_results['overhead_ratio']}x "
        f"uninstrumented ({obs_results['spans_recorded']} spans, "
        f"{obs_results['latency_observations']} observations)"
    )
    print(
        f"  service: {service_results['sim_seconds_per_wall_second']} "
        f"sim-sec/wall-sec over {service_results['requests']} requests"
    )
    ok = True
    for check, outcome in sorted(checks.items()):
        status = "ok" if outcome["ok"] else "FAIL"
        print(f"  [{status}] {check}: {outcome['detail']}")
        ok = ok and bool(outcome["ok"])
    return ok


def test_wallclock_smoke():
    """Pytest entry point (exercised by the benchmark suite, not tier-1)."""
    assert run(smoke=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small inputs for CI smoke runs"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite wallclock_baseline.json with this run's ratios",
    )
    args = parser.parse_args(argv)
    return 0 if run(smoke=args.smoke, update_baseline=args.update_baseline) else 1


if __name__ == "__main__":
    sys.exit(main())
