"""Ablation — cache-coherence latency tolerance (Section V-E).

Cereal joins the on-chip coherence domain and fetches up-to-date copies
with ``get`` messages; the paper argues the potential latency increase
"can be effectively tolerated by Cereal's pipelined execution". This
ablation sweeps the extra per-read latency and compares the pipelined
units against the unpipelined vanilla configuration.
"""

from repro.analysis import ReportTable
from repro.cereal import CerealAccelerator
from repro.common.config import CerealConfig
from repro.jvm import Heap
from repro.workloads import build_microbench
from repro.workloads.micro import register_micro_klasses

_SWEEP_NS = (0.0, 20.0, 40.0, 80.0)


def _setup():
    heap = Heap()
    register_micro_klasses(heap.registry)
    root = build_microbench(heap, "tree-narrow")
    base = CerealAccelerator()
    for klass in heap.registry:
        base.register_class(klass)
    return heap, root, base


def test_ablation_coherence_tolerance(benchmark, results_dir):
    def build():
        heap, root, base = _setup()
        stream = base.serialize(root)[0].stream
        table = ReportTable(
            "Ablation: coherence get-latency tolerance (deserialize)",
            ["Extra ns/read", "Pipelined (us)", "Vanilla (us)"],
        )
        pipelined = {}
        vanilla = {}
        for extra in _SWEEP_NS:
            pipe_acc = CerealAccelerator(
                CerealConfig(coherence_extra_read_ns=extra),
                registration=base.registration,
            )
            van_acc = CerealAccelerator(
                CerealConfig(coherence_extra_read_ns=extra).vanilla(),
                registration=base.registration,
            )
            _, p, _ = pipe_acc.deserialize(stream, Heap(registry=heap.registry))
            _, v, _ = van_acc.deserialize(stream, Heap(registry=heap.registry))
            pipelined[extra] = p.elapsed_ns
            vanilla[extra] = v.elapsed_ns
            table.add_row(
                f"{extra:.0f}",
                f"{p.elapsed_ns / 1000:.2f}",
                f"{v.elapsed_ns / 1000:.2f}",
            )
        table.show()
        table.save(results_dir, "ablation_coherence")
        return pipelined, vanilla

    pipelined, vanilla = benchmark.pedantic(build, rounds=1, iterations=1)
    worst = max(_SWEEP_NS)
    pipe_slowdown = pipelined[worst] / pipelined[0.0]
    van_slowdown = vanilla[worst] / vanilla[0.0]
    # Pipelined execution absorbs the added latency better than vanilla.
    assert pipe_slowdown < van_slowdown
    # Tripling effective read latency costs the pipelined DU < 3x.
    assert pipe_slowdown < 3.0


def test_ablation_coherence_serialization_side(benchmark, results_dir):
    """The SU's dependent header chain is more exposed than the DU."""

    def build():
        heap, root, base = _setup()
        clean = base.serialize(root)[1].elapsed_ns
        coherent_acc = CerealAccelerator(
            CerealConfig(coherence_extra_read_ns=40.0),
            registration=base.registration,
        )
        coherent = coherent_acc.serialize(root)[1].elapsed_ns
        return clean, coherent

    clean, coherent = benchmark.pedantic(build, rounds=1, iterations=1)
    assert coherent > clean
