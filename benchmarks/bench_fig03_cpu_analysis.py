"""Figure 3 — CPU characterization of the S/D process.

(a) IPC of Java S/D and Kryo is low (paper: ~1.01 and ~0.96);
(b) LLC miss rates are high (little temporal locality);
(c) both use only a few percent of DRAM bandwidth;
(d) Kryo's speedup over Java S/D is modest for serialization.
"""

from repro.analysis import ReportTable, geomean
from repro.workloads import MICROBENCH_CONFIGS


def test_fig03a_ipc(benchmark, micro_results, results_dir):
    def build():
        table = ReportTable(
            "Figure 3(a): S/D IPC on the host CPU",
            ["Workload", "Java ser", "Java deser", "Kryo ser", "Kryo deser"],
        )
        ipcs = []
        for workload in MICROBENCH_CONFIGS:
            java = micro_results.results[workload]["java-builtin"]
            kryo = micro_results.results[workload]["kryo"]
            ipcs.extend(
                [java.serialize_ipc, java.deserialize_ipc,
                 kryo.serialize_ipc, kryo.deserialize_ipc]
            )
            table.add_row(
                workload,
                f"{java.serialize_ipc:.2f}",
                f"{java.deserialize_ipc:.2f}",
                f"{kryo.serialize_ipc:.2f}",
                f"{kryo.deserialize_ipc:.2f}",
            )
        table.add_note("paper: Java S/D ~1.01, Kryo ~0.96 on a 4-wide core")
        table.show()
        table.save(results_dir, "fig03a_ipc")
        return ipcs

    ipcs = benchmark.pedantic(build, rounds=1, iterations=1)
    # All S/D IPCs sit far below the machine's 4-wide issue rate.
    assert all(ipc < 2.0 for ipc in ipcs)
    assert geomean(ipcs) < 1.8


def test_fig03b_llc_miss_rate(benchmark, micro_results, results_dir):
    def build():
        table = ReportTable(
            "Figure 3(b): LLC miss rate during serialization",
            ["Workload", "Java S/D", "Kryo"],
        )
        rates = []
        for workload in MICROBENCH_CONFIGS:
            java = micro_results.results[workload]["java-builtin"]
            kryo = micro_results.results[workload]["kryo"]
            rates.extend([java.llc_miss_rate, kryo.llc_miss_rate])
            table.add_row(
                workload,
                f"{java.llc_miss_rate * 100:.1f}%",
                f"{kryo.llc_miss_rate * 100:.1f}%",
            )
        table.add_note("footprints exceed the (scaled) LLC: low temporal locality")
        table.show()
        table.save(results_dir, "fig03b_llc")
        return rates

    rates = benchmark.pedantic(build, rounds=1, iterations=1)
    assert sum(rates) / len(rates) > 0.4  # high miss rates on average


def test_fig03c_bandwidth(benchmark, micro_results, results_dir):
    def build():
        table = ReportTable(
            "Figure 3(c): DRAM bandwidth utilization (software S/D)",
            ["Workload", "Java ser", "Java deser", "Kryo ser", "Kryo deser"],
        )
        utils = []
        for workload in MICROBENCH_CONFIGS:
            java = micro_results.results[workload]["java-builtin"]
            kryo = micro_results.results[workload]["kryo"]
            utils.extend(
                [java.serialize_bandwidth, java.deserialize_bandwidth,
                 kryo.serialize_bandwidth, kryo.deserialize_bandwidth]
            )
            table.add_row(
                workload,
                f"{java.serialize_bandwidth * 100:.2f}%",
                f"{java.deserialize_bandwidth * 100:.2f}%",
                f"{kryo.serialize_bandwidth * 100:.2f}%",
                f"{kryo.deserialize_bandwidth * 100:.2f}%",
            )
        table.add_note("paper: Java ~2.7-3.5%, Kryo ~4.1-4.5% of 76.8 GB/s")
        table.show()
        table.save(results_dir, "fig03c_bandwidth")
        return utils

    utils = benchmark.pedantic(build, rounds=1, iterations=1)
    # Single-digit utilization: limited MLP starves the memory system.
    assert all(u < 0.12 for u in utils)


def test_fig03d_kryo_speedup(benchmark, micro_results, results_dir):
    def build():
        table = ReportTable(
            "Figure 3(d): Kryo speedup over Java S/D",
            ["Workload", "Serialize", "Deserialize"],
        )
        ser, deser = [], []
        for workload in MICROBENCH_CONFIGS:
            s = micro_results.speedup_over_java(workload, "kryo", "serialize")
            d = micro_results.speedup_over_java(workload, "kryo", "deserialize")
            ser.append(s)
            deser.append(d)
            table.add_row(workload, f"{s:.2f}x", f"{d:.2f}x")
        table.add_note("serialization gains are marginal; deserialization large")
        table.show()
        table.save(results_dir, "fig03d_kryo_speedup")
        return ser, deser

    ser, deser = benchmark.pedantic(build, rounds=1, iterations=1)
    assert 1.2 < geomean(ser) < 4.0  # paper: 2.30x
    assert geomean(deser) > 10  # paper: 52.3x
