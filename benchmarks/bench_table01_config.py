"""Table I — Architectural parameters for evaluation.

Regenerates the configuration table from the library's config dataclasses
and checks the headline values against the paper.
"""

from repro.analysis import ReportTable
from repro.common.config import SystemConfig
from repro.common.units import GB


def test_table01_architectural_parameters(benchmark, results_dir):
    system = benchmark(SystemConfig)

    host, dram, cereal = system.host, system.dram, system.cereal
    table = ReportTable(
        "Table I: Architectural parameters", ["Component", "Parameter", "Value"]
    )
    table.add_row("Host core", "Model", host.name)
    table.add_row("Host core", "Cores @ clock", f"{host.cores} @ {host.clock_ghz} GHz")
    table.add_row("Host L1", "Size", f"{host.l1.size_bytes // 1024} KB")
    table.add_row("Host L2", "Size", f"{host.l2.size_bytes // (1024 * 1024)} MB")
    table.add_row("Host L3", "Size", f"{host.l3.size_bytes // (1024 * 1024)} MB")
    table.add_row("DRAM", "Organization", f"{dram.standard}, {dram.channels} channels")
    table.add_row(
        "DRAM", "Bandwidth", f"{dram.peak_bandwidth_bytes_per_sec / GB:.1f} GB/s"
    )
    table.add_row("DRAM", "Zero-load latency", f"{dram.zero_load_latency_ns:.0f} ns")
    table.add_row(
        "Cereal",
        "Units",
        f"{cereal.num_serializer_units} SU, {cereal.num_deserializer_units} DU",
    )
    table.add_row(
        "Cereal",
        "MAI",
        f"{cereal.mai_entries} entries, {cereal.mai_block_bytes} B blocks",
    )
    table.add_row("Cereal", "TLB", f"{cereal.tlb_entries} entries")
    table.show()
    table.save(results_dir, "table01_config")

    # Headline Table I values.
    assert dram.peak_bandwidth_bytes_per_sec == 76.8 * GB
    assert dram.zero_load_latency_ns == 40.0
    assert cereal.num_serializer_units == 8
    assert cereal.num_deserializer_units == 8
    assert cereal.mai_entries == 64
    assert cereal.tlb_entries == 128
