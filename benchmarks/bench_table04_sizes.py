"""Table IV — Serialized object sizes across microbenchmarks.

Paper shape: Kryo < Java S/D on Tree/List (compact varints, no headers);
Cereal sits between/above them on Tree/List (it ships full 8 B slots plus
packed metadata) but wins decisively on the reference-dense Graph thanks
to the object packing scheme.
"""

from repro.analysis import ReportTable
from repro.workloads import MICROBENCH_CONFIGS


def _sizes_table(micro_results, results_dir):
    table = ReportTable(
        "Table IV: serialized sizes (KiB)",
        ["Workload", "Java S/D", "Kryo", "Skyway", "Cereal"],
    )
    sizes = {}
    for workload in MICROBENCH_CONFIGS:
        row = micro_results.results[workload]
        sizes[workload] = {
            name: row[name].stream_bytes
            for name in ("java-builtin", "kryo", "skyway", "cereal")
        }
        table.add_row(
            workload,
            f"{sizes[workload]['java-builtin'] / 1024:.1f}",
            f"{sizes[workload]['kryo'] / 1024:.1f}",
            f"{sizes[workload]['skyway'] / 1024:.1f}",
            f"{sizes[workload]['cereal'] / 1024:.1f}",
        )
    table.add_note("paper reports MB at ~1000x scale; ratios are the target")
    table.show()
    table.save(results_dir, "table04_sizes")
    return sizes


def test_table04_serialized_sizes(benchmark, micro_results, results_dir):
    sizes = benchmark.pedantic(
        _sizes_table, args=(micro_results, results_dir), rounds=1, iterations=1
    )
    for workload in ("tree-narrow", "tree-wide", "list-small", "list-large"):
        # Kryo is the most compact on value-dominated shapes.
        assert sizes[workload]["kryo"] < sizes[workload]["java-builtin"]
        # Cereal pays for slot-granular values but packs its metadata,
        # landing below the raw-copy Skyway format.
        assert sizes[workload]["cereal"] < sizes[workload]["skyway"]


def test_table04_graph_packing_wins(benchmark, micro_results, results_dir):
    """Reference-dense graphs: packed references beat per-edge handles."""

    def ratios():
        dense = micro_results.results["graph-dense"]
        return (
            dense["java-builtin"].stream_bytes / dense["cereal"].stream_bytes,
            dense["kryo"].stream_bytes / dense["cereal"].stream_bytes,
        )

    vs_java, vs_kryo = benchmark(ratios)
    assert vs_java > 1.5  # Cereal clearly smaller than Java S/D
    # Paper Table IV: Cereal is also far below Kryo on dense graphs.
    assert vs_kryo > 0.8


def test_table04_dense_graph_is_cereals_best_case(
    benchmark, micro_results, results_dir
):
    def relative_size(workload):
        row = micro_results.results[workload]
        return row["cereal"].stream_bytes / row["java-builtin"].stream_bytes

    def spread():
        return relative_size("graph-dense"), relative_size("list-large")

    dense, list_large = benchmark(spread)
    assert dense < list_large  # packing pays off most with many references
