"""Table V — Area and power of the Cereal accelerator (40 nm synthesis).

The per-module values are published synthesis results reproduced as model
constants; the totals are recomputed from the per-unit numbers exactly as
the table does: 3.857 mm^2 and 1231.6 mW, 612.5x less area and 113.7x
less power than the host CPU.
"""

import pytest

from repro.analysis import ReportTable
from repro.cereal.power import (
    area_power_table,
    cereal_area_mm2,
    cereal_average_power_watts,
)
from repro.common.config import HostCPUConfig


def test_table05_area_power(benchmark, results_dir):
    rows, total_area, total_power_mw = benchmark(area_power_table)

    table = ReportTable(
        "Table V: area and power of Cereal",
        ["Module", "Unit mm^2", "Unit mW", "Count", "Total mm^2", "Total mW"],
    )
    for name, unit_area, unit_power, count, area, power in rows:
        table.add_row(
            name, f"{unit_area:.3f}", f"{unit_power:.1f}", count,
            f"{area:.3f}", f"{power:.1f}",
        )
    table.add_row(
        "TOTAL", "", "", "", f"{total_area:.3f}", f"{total_power_mw:.1f}"
    )
    table.show()
    table.save(results_dir, "table05_area_power")

    assert total_area == pytest.approx(3.857, abs=0.01)
    assert total_power_mw == pytest.approx(1231.6, abs=1.0)


def test_table05_versus_host_cpu(benchmark, results_dir):
    def ratios():
        host = HostCPUConfig()
        area_ratio = host.die_area_mm2 / cereal_area_mm2()
        power_ratio = host.tdp_watts / cereal_average_power_watts()
        return area_ratio, power_ratio

    area_ratio, power_ratio = benchmark(ratios)
    assert area_ratio == pytest.approx(612.5, rel=0.01)  # paper Section VI-E
    assert power_ratio == pytest.approx(113.7, rel=0.01)


def test_table05_deserializer_dominates_area(benchmark, results_dir):
    def pools():
        rows, _, _ = area_power_table()
        by_name = {row[0]: row for row in rows}
        su = sum(
            by_name[n][4]
            for n in (
                "Header manager",
                "Reference array writer",
                "Object metadata manager",
                "Object handler",
            )
        )
        du = sum(
            by_name[n][4]
            for n in ("Layout manager", "Block manager", "Block reconstructor")
        )
        return su, du

    su_area, du_area = benchmark(pools)
    assert su_area == pytest.approx(0.464, abs=0.01)  # paper: 0.464 mm^2
    assert du_area == pytest.approx(2.248, abs=0.01)  # paper: 2.248 mm^2
