"""Figure 12 — Java Serialization Benchmark Suite comparison.

Paper: Cereal delivers 43.4x higher average S/D throughput than the 88
other libraries; even against Kryo-manual (the fastest library) Cereal is
15.1x faster, and Cereal's stream is 46% smaller than the suite average.

The four measured implementations (java-builtin, kryo, kryo-manual as a
constant-factor variant of kryo, skyway) anchor the field; the remaining
84 entries come from calibrated cost profiles relative to Java S/D.
"""

from repro.analysis import ReportTable, geomean
from repro.workloads import JSBS_LIBRARY_PROFILES
from repro.workloads.jsbs import KRYO_MANUAL_TIME_FACTOR


def _field(jsbs_results):
    """(name, round_trip_ns, size_bytes) for every suite entry."""
    java_rt = jsbs_results.round_trip_ns("java")
    java_size = jsbs_results.java.stream_bytes
    entries = [
        ("java-builtin", java_rt, java_size),
        ("kryo", jsbs_results.round_trip_ns("kryo"), jsbs_results.kryo.stream_bytes),
        (
            "kryo-manual",
            jsbs_results.round_trip_ns("kryo") * KRYO_MANUAL_TIME_FACTOR,
            jsbs_results.kryo.stream_bytes,
        ),
        (
            "skyway",
            jsbs_results.round_trip_ns("skyway"),
            jsbs_results.skyway.stream_bytes,
        ),
    ]
    for profile in JSBS_LIBRARY_PROFILES:
        entries.append(
            (
                profile.name,
                java_rt * profile.time_factor,
                java_size * profile.size_factor,
            )
        )
    return entries


def test_fig12_average_speedup(benchmark, jsbs_results, results_dir):
    def build():
        entries = _field(jsbs_results)
        cereal_rt = jsbs_results.round_trip_ns("cereal")
        speedups = [rt / cereal_rt for _, rt, _ in entries]
        table = ReportTable(
            "Figure 12: Cereal speedup over the JSBS field (top/bottom 10)",
            ["Library", "Round trip (us)", "Cereal speedup"],
        )
        ranked = sorted(zip(entries, speedups), key=lambda pair: pair[1])
        shown = ranked[:10] + ranked[-10:]
        for (name, rt, _), speedup in shown:
            table.add_row(name, f"{rt / 1000:.2f}", f"{speedup:.1f}x")
        mean = sum(speedups) / len(speedups)
        table.add_note(f"libraries: {len(entries)}; arithmetic-mean speedup {mean:.1f}x")
        table.add_note("paper: 43.4x average over 88 libraries")
        table.show()
        table.save(results_dir, "fig12_jsbs_speedup")
        return entries, speedups, mean

    entries, speedups, mean = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(entries) == 88  # "88 other S/D libraries"
    assert 20 < mean < 90  # paper: 43.4x
    assert all(speedup > 1 for speedup in speedups)  # Cereal beats every entry


def test_fig12_fastest_library_margin(benchmark, jsbs_results, results_dir):
    def margin():
        cereal_rt = jsbs_results.round_trip_ns("cereal")
        fastest = min(rt for _, rt, _ in _field(jsbs_results))
        return fastest / cereal_rt

    value = benchmark(margin)
    # Paper: 15.1x over Kryo-manual, the fastest library in the suite. Our
    # Kryo deserializer model is very fast on the small, string-heavy
    # MediaContent object, so the modelled margin is smaller (documented in
    # EXPERIMENTS.md); Cereal must still clearly beat the fastest library.
    assert 1.5 < value < 40


def test_fig12_size_comparison(benchmark, jsbs_results, results_dir):
    def build():
        entries = _field(jsbs_results)
        sizes = [size for _, _, size in entries]
        cereal_size = jsbs_results.cereal.stream_bytes
        average = sum(sizes) / len(sizes)
        table = ReportTable(
            "Figure 12 (sizes): serialized MediaContent",
            ["Library", "Size (B)"],
        )
        table.add_row("suite average", f"{average:.0f}")
        table.add_row("cereal", f"{cereal_size}")
        table.add_note("paper: Cereal 46% below the suite average")
        table.show()
        table.save(results_dir, "fig12_jsbs_sizes")
        return average, cereal_size

    average, cereal_size = benchmark.pedantic(build, rounds=1, iterations=1)
    # Paper: Cereal is 46% below the suite average; with natural-width
    # (packed) array elements on the heap, our Cereal stream lands below
    # the average too (the margin is smaller — see EXPERIMENTS.md).
    assert cereal_size < average
