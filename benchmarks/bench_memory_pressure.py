"""Memory-pressure sweep: where the cache-tier crossover sits, by S/D cost.

The system-level claim this gate protects ("Garbage Collection or
Serialization? Between a Rock and a Hard Place!" meets Cereal): which
cache tier wins depends on how cheap S/D is.

* **deserialized on-heap** pins the cached graph bytes against the heap
  budget, so every transient allocation in the iterative loop is charged
  GC at the occupancy-driven curve's elevated rate — expensive exactly
  when the budget is tight;
* **serialized off-heap** keeps the heap empty (GC at the flat base rate)
  but pays a full deserialization plus rebuild GC on *every* read —
  expensive exactly when S/D is slow.

Three legs:

* **Crossover matrix** — budget (tight / medium / generous) x tier x
  serializer (java interp / kryo plans / cereal codegen), one iterative
  cached workload per cell. Gates: at the tight budget cereal-serialized
  beats deserialized while java-serialized loses to it; at the generous
  budget deserialized wins (or ties) for every serializer; deserialized
  totals fall monotonically as the budget grows; serialized totals are
  budget-invariant.
* **Policy leg** — a crafted admission/read pattern on an off-heap budget
  that forces exactly one spill, where ``lru`` / ``size`` / ``cost``
  each pick a *different* victim (least-recent vs largest vs
  cheapest-rebuild-per-byte), all deterministic.
* **Reconciliation leg** — a traced cell asserting ``memstore.*``
  counters match the manager's transition log and that the sum of
  ``memstore.*`` span durations reproduces the manager's charged-ns
  tally to within 1 ns.

Run standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_memory_pressure.py --smoke

or as part of the benchmark suite::

    PYTHONPATH=src python -m pytest benchmarks/bench_memory_pressure.py
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Tuple

if __name__ == "__main__":  # allow `python benchmarks/bench_memory_pressure.py`
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _emit import emit_json, emit_trace, runtime_snapshot, trace_json_path  # noqa: E402
from repro.analysis import ReportTable  # noqa: E402
from repro.cereal import CerealAccelerator  # noqa: E402
from repro.formats import JavaSerializer, KryoSerializer  # noqa: E402
from repro.jvm.klass import FieldKind  # noqa: E402
from repro.memstore import (  # noqa: E402
    POLICY_NAMES,
    MemstoreConfig,
    TIER_DESERIALIZED,
    TIER_SERIALIZED,
    TIER_SPILLED,
)
from repro.obs import Tracer, get_registry  # noqa: E402
from repro.spark import CerealBackend, MiniSparkContext, SoftwareBackend  # noqa: E402
from repro.spark.apps.base import ensure_klass, register_backend_classes  # noqa: E402

_SEED = 0x3E40
_RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

SERIALIZERS = ("java", "kryo", "cereal")
#: Budget levels as multiples of the cached graph bytes: ``tight`` pins
#: the cache at ~85% occupancy (deep into the pressure curve), ``medium``
#: at 50%, ``generous`` at 10% (below the knee — flat GC).
BUDGET_LEVELS = (("tight", 1.0 / 0.85), ("medium", 2.0), ("generous", 10.0))
TIERS_SWEPT = (TIER_DESERIALIZED, TIER_SERIALIZED)


def _make_backend(name: str):
    if name == "java":
        return SoftwareBackend(JavaSerializer())
    if name == "kryo":
        return SoftwareBackend(KryoSerializer())
    if name == "cereal":
        return CerealBackend(CerealAccelerator())
    raise ValueError(name)


def _make_context(serializer: str, memstore_config=None, tracer=None):
    context = MiniSparkContext(
        _make_backend(serializer),
        memstore_config=memstore_config,
        tracer=tracer,
    )
    ensure_klass(
        context.registry,
        "PressureRecord",
        [("key", FieldKind.LONG), ("payload", FieldKind.REFERENCE)],
    )
    context.registry.array_klass(FieldKind.DOUBLE)
    context.registry.array_klass(FieldKind.LONG)
    context.registry.array_klass(FieldKind.REFERENCE)
    register_backend_classes(context.backend, context.registry)
    return context


def _build_records(context, count: int, payload_doubles: int = 16):
    klass = context.registry.by_name("PressureRecord")
    heap = context.executor_heap
    records = []
    for index in range(count):
        record = heap.allocate(klass)
        record.set("key", index * 31)
        payload = heap.new_array(FieldKind.DOUBLE, payload_doubles)
        for slot in range(payload_doubles):
            payload.set_element(slot, float(index + slot) * 0.5)
        record.set("payload", payload)
        records.append(record)
    return records


# -- crossover matrix --------------------------------------------------------------------


def _probe_graph_bytes(num_records: int, partitions: int) -> int:
    """Measure the cached graph bytes (backend-independent) once."""
    context = _make_context("kryo")
    records = _build_records(context, num_records)
    cached = context.parallelize(records, partitions).cache_serialized()
    return sum(entry.graph_bytes for entry in cached.entries)


def _run_cell(
    serializer: str,
    tier: str,
    budget_bytes: int,
    num_records: int,
    partitions: int,
    iterations: int,
    churn_longs: int,
    tracer=None,
) -> Tuple[float, MiniSparkContext]:
    """One iterative cached workload; returns (total ns, context)."""
    config = MemstoreConfig(
        budget_bytes=budget_bytes,
        storage_fraction=1.0,
        # Off-heap explicitly uncapped: the sweep axis is the *heap*
        # budget, and java's verbose streams can exceed the graph bytes.
        offheap_budget_bytes=1 << 30,
        policy="lru",
    )
    context = _make_context(serializer, memstore_config=config, tracer=tracer)
    records = _build_records(context, num_records)
    cached = context.parallelize(records, partitions).cache(tier=tier)
    heap = context.executor_heap

    def churn(partition):
        # Per-record transient allocation: the iteration's nursery churn,
        # priced by whatever the pinned live set makes GC cost.
        for _ in partition:
            heap.new_array(FieldKind.LONG, churn_longs)
        return partition

    for _ in range(iterations):
        dataset = cached.read()
        dataset.map_partitions(churn, instructions_per_record=200.0)
    return context.breakdown.total_ns, context


def run_crossover_leg(smoke: bool) -> Dict:
    num_records = 600 if smoke else 1200
    partitions = 4
    iterations = 5 if smoke else 8
    churn_longs = 24

    graph_bytes = _probe_graph_bytes(num_records, partitions)
    budgets = {
        name: int(graph_bytes * factor) for name, factor in BUDGET_LEVELS
    }

    matrix: Dict[str, Dict[str, Dict[str, float]]] = {}
    for serializer in SERIALIZERS:
        matrix[serializer] = {}
        for budget_name, budget in budgets.items():
            cell: Dict[str, float] = {}
            for tier in TIERS_SWEPT:
                total, _ = _run_cell(
                    serializer, tier, budget,
                    num_records, partitions, iterations, churn_longs,
                )
                cell[tier] = total
            matrix[serializer][budget_name] = cell

    # Determinism probe: the most pressure-sensitive cell, run again.
    repeat, _ = _run_cell(
        "cereal", TIER_DESERIALIZED, budgets["tight"],
        num_records, partitions, iterations, churn_longs,
    )
    return {
        "num_records": num_records,
        "partitions": partitions,
        "iterations": iterations,
        "churn_longs": churn_longs,
        "graph_bytes": graph_bytes,
        "budgets": budgets,
        "matrix": matrix,
        "repeat_total_ns": repeat,
        "first_total_ns": matrix["cereal"]["tight"][TIER_DESERIALIZED],
    }


# -- policy leg --------------------------------------------------------------------------


def _run_policy(policy: str) -> Dict:
    """Crafted spill: four single-partition cached datasets, one eviction.

    Stream sizes and read pattern are arranged so each policy picks a
    *different* victim when the fourth admission overflows the off-heap
    budget:

    * entry 0 — small, read three times *before* the others are admitted
      (most reads, but the oldest access timestamp)
    * entry 1 — small, never read (fewest expected re-reads)
    * entry 2 — large, read once, recent (largest bytes)
    * entry 3 — the admission that forces the spill

    ``lru`` spills entry 0 (least recently accessed), ``cost`` spills
    entry 1 (cheapest modelled rebuild per byte: fewest expected re-reads),
    ``size`` spills entry 2 (most bytes relieved per demotion).
    """
    sizes = (40, 40, 400, 80)

    def build(config=None):
        context = _make_context("kryo", memstore_config=config)
        datasets = [
            context.parallelize(_build_records(context, size), 1)
            for size in sizes
        ]
        return context, datasets

    # Probe pass with an unbounded budget to learn the stream sizes.
    context, datasets = build()
    probe = [d.cache_serialized() for d in datasets[:3]]
    stream_bytes = [c.entries[0].stream_bytes for c in probe]
    probe_third = datasets[3].cache_serialized()
    total_streams = sum(stream_bytes) + probe_third.entries[0].stream_bytes

    config = MemstoreConfig(
        budget_bytes=512 * 1024 * 1024,
        offheap_budget_bytes=total_streams - 1,  # fourth admission overflows
        policy=policy,
    )
    context, datasets = build(config)
    cached = [datasets[0].cache_serialized()]
    cached[0].read()
    cached[0].read()
    cached[0].read()
    cached.append(datasets[1].cache_serialized())
    cached.append(datasets[2].cache_serialized())
    cached[2].read()
    cached.append(datasets[3].cache_serialized())  # forces one spill
    for c in cached:
        c.read()

    manager = context.memstore
    spills = [
        (entry_id, from_tier, to_tier)
        for entry_id, from_tier, to_tier, _ in manager.transitions
        if to_tier == TIER_SPILLED
    ]
    records_seen = sum(
        entry.reads for entry in manager.entries.values()
    )
    return {
        "policy": policy,
        "stream_bytes": stream_bytes,
        "transitions": list(manager.transitions),
        "spills": spills,
        "victim": spills[0][0] if spills else None,
        "total_ns": context.breakdown.total_ns,
        "reads_by_tier": dict(manager.reads),
        "entry_reads": records_seen,
        "stats": manager.stats(),
    }


def run_policy_leg() -> Dict:
    runs = {policy: _run_policy(policy) for policy in POLICY_NAMES}
    repeats = {policy: _run_policy(policy) for policy in POLICY_NAMES}
    return {
        "policies": runs,
        "repeat_totals": {
            policy: repeats[policy]["total_ns"] for policy in POLICY_NAMES
        },
        "victims": {policy: runs[policy]["victim"] for policy in POLICY_NAMES},
    }


# -- reconciliation leg ------------------------------------------------------------------


def run_reconciliation_leg(smoke: bool) -> Tuple[Dict, Tracer]:
    """A traced, pressure-free cell: spans and counters must reconcile."""
    num_records = 300 if smoke else 600
    iterations = 4
    registry = get_registry()
    before = registry.snapshot()
    tracer = Tracer(enabled=True, capacity=1 << 16)

    total, context = _run_cell(
        "kryo", TIER_SERIALIZED, 512 * 1024 * 1024,
        num_records, 3, iterations, churn_longs=8, tracer=tracer,
    )
    manager = context.memstore
    after = registry.snapshot()

    def delta(key: str) -> float:
        return after.get(key, 0) - before.get(key, 0)

    spans = [s for s in tracer.spans() if s.name.startswith("memstore.")]
    span_sum = sum(s.end_ns - s.start_ns for s in spans)
    span_counts: Dict[str, int] = {}
    for span in spans:
        span_counts[span.name] = span_counts.get(span.name, 0) + 1
    return {
        "total_ns": total,
        "charged_ns": dict(manager.charged_ns),
        "charged_total_ns": manager.charged_total_ns,
        "span_sum_ns": span_sum,
        "span_counts": span_counts,
        "span_error_ns": abs(span_sum - manager.charged_total_ns),
        "admitted": manager.admitted[TIER_SERIALIZED],
        "reads": manager.reads[TIER_SERIALIZED],
        "counter_admitted": delta("memstore.admitted{tier=serialized}"),
        "counter_reads": delta("memstore.reads{tier=serialized}"),
        "transitions": len(manager.transitions),
    }, tracer


# -- checks ------------------------------------------------------------------------------


def check_properties(results: Dict) -> Dict[str, Dict]:
    checks: Dict[str, Dict] = {}
    crossover = results["crossover"]
    matrix = crossover["matrix"]

    tight_cereal = matrix["cereal"]["tight"]
    checks["tight_budget_cereal_serialized_wins"] = {
        "ok": tight_cereal[TIER_SERIALIZED] < tight_cereal[TIER_DESERIALIZED],
        "detail": (
            f"tight budget, cereal S/D: serialized {tight_cereal[TIER_SERIALIZED]:,.0f} ns "
            f"vs deserialized {tight_cereal[TIER_DESERIALIZED]:,.0f} ns"
        ),
    }

    tight_java = matrix["java"]["tight"]
    checks["tight_budget_java_serialized_loses"] = {
        "ok": tight_java[TIER_SERIALIZED] > tight_java[TIER_DESERIALIZED],
        "detail": (
            f"tight budget, java S/D: serialized {tight_java[TIER_SERIALIZED]:,.0f} ns "
            f"vs deserialized {tight_java[TIER_DESERIALIZED]:,.0f} ns"
        ),
    }

    generous_flips = {
        serializer: matrix[serializer]["generous"]
        for serializer in SERIALIZERS
    }
    flip_failures = [
        serializer
        for serializer, cell in generous_flips.items()
        if cell[TIER_DESERIALIZED] > cell[TIER_SERIALIZED]
    ]
    checks["generous_budget_deserialized_wins"] = {
        "ok": not flip_failures,
        "detail": (
            "deserialized wins or ties at the generous budget for "
            + ", ".join(SERIALIZERS)
            if not flip_failures
            else f"deserialized lost for: {flip_failures}"
        ),
    }

    monotone_failures = []
    for serializer in SERIALIZERS:
        tight = matrix[serializer]["tight"][TIER_DESERIALIZED]
        medium = matrix[serializer]["medium"][TIER_DESERIALIZED]
        generous = matrix[serializer]["generous"][TIER_DESERIALIZED]
        if not tight >= medium >= generous:
            monotone_failures.append(serializer)
    checks["deserialized_cost_monotone_in_pressure"] = {
        "ok": not monotone_failures,
        "detail": (
            "deserialized totals fall as the budget grows"
            if not monotone_failures
            else f"non-monotone for: {monotone_failures}"
        ),
    }

    invariant_failures = []
    for serializer in SERIALIZERS:
        totals = {
            name: matrix[serializer][name][TIER_SERIALIZED]
            for name, _ in BUDGET_LEVELS
        }
        if max(totals.values()) - min(totals.values()) > 1.0:
            invariant_failures.append((serializer, totals))
    checks["serialized_cost_budget_invariant"] = {
        "ok": not invariant_failures,
        "detail": (
            "serialized-tier totals identical across budgets (empty heap)"
            if not invariant_failures
            else f"budget-sensitive: {invariant_failures}"
        ),
    }

    drift = abs(crossover["repeat_total_ns"] - crossover["first_total_ns"])
    policy_repeat_drift = max(
        abs(
            results["policy"]["repeat_totals"][policy]
            - results["policy"]["policies"][policy]["total_ns"]
        )
        for policy in POLICY_NAMES
    )
    checks["deterministic_across_runs"] = {
        "ok": drift == 0.0 and policy_repeat_drift == 0.0,
        "detail": (
            f"repeat drift: crossover cell {drift} ns, "
            f"policy legs {policy_repeat_drift} ns"
        ),
    }

    victims = results["policy"]["victims"]
    expected = {"lru": 0, "cost": 1, "size": 2}
    checks["policies_pick_designed_victims"] = {
        "ok": victims == expected,
        "detail": f"spill victims {victims} (expected {expected})",
    }

    recon = results["reconciliation"]
    checks["spans_reconcile_with_ledger"] = {
        "ok": recon["span_error_ns"] <= 1.0,
        "detail": (
            f"sum of memstore.* span durations off by "
            f"{recon['span_error_ns']:.3g} ns from the manager's "
            f"{recon['charged_total_ns']:,.0f} ns charged"
        ),
    }
    checks["counters_reconcile_with_transitions"] = {
        "ok": (
            recon["counter_admitted"] == recon["admitted"]
            and recon["counter_reads"] == recon["reads"]
            and recon["span_counts"].get("memstore.admit", 0)
            == recon["admitted"]
            and recon["span_counts"].get("memstore.read", 0) == recon["reads"]
        ),
        "detail": (
            f"memstore.admitted {recon['counter_admitted']} = "
            f"{recon['admitted']} admits, memstore.reads "
            f"{recon['counter_reads']} = {recon['reads']} reads, "
            f"span counts {recon['span_counts']}"
        ),
    }
    return checks


# -- driver ------------------------------------------------------------------------------


def run_bench(smoke: bool = False) -> Tuple[Dict, ReportTable, Tracer]:
    crossover = run_crossover_leg(smoke)
    policy = run_policy_leg()
    reconciliation, tracer = run_reconciliation_leg(smoke)
    results = {
        "crossover": crossover,
        "policy": policy,
        "reconciliation": reconciliation,
    }

    table = ReportTable(
        "Cache-tier crossover: GC pressure vs S/D cost",
        ["Serializer", "Budget", "Deserialized (ms)", "Serialized (ms)",
         "Winner"],
    )
    for serializer in SERIALIZERS:
        for budget_name, _ in BUDGET_LEVELS:
            cell = crossover["matrix"][serializer][budget_name]
            deser = cell[TIER_DESERIALIZED]
            ser = cell[TIER_SERIALIZED]
            winner = "serialized" if ser < deser else "deserialized"
            table.add_row(
                serializer,
                budget_name,
                f"{deser / 1e6:,.2f}",
                f"{ser / 1e6:,.2f}",
                winner,
            )
    table.add_note(
        f"seed {_SEED:#x}; budgets = graph_bytes x "
        f"{dict((n, round(f, 2)) for n, f in BUDGET_LEVELS)}; policy-leg "
        f"spill victims: {policy['victims']}"
    )
    return results, table, tracer


def _emit(
    results: Dict, table: ReportTable, tracer: Tracer, results_dir: str, smoke: bool
) -> Dict[str, Dict]:
    table.show()
    table.save(results_dir, "memory_pressure")
    emit_trace(
        results_dir, "memory_pressure", tracer, metadata={"seed": _SEED}
    )
    checks = check_properties(results)
    emit_json(
        results_dir,
        "memory_pressure",
        results,
        meta={
            "seed": _SEED,
            "smoke": smoke,
            "serializers": list(SERIALIZERS),
            "budget_levels": [name for name, _ in BUDGET_LEVELS],
            "policies": list(POLICY_NAMES),
        },
        checks=checks,
        runtime=runtime_snapshot(),
    )
    return checks


# -- pytest entry point ------------------------------------------------------------------


def test_memory_pressure(benchmark, results_dir):
    def build():
        results, table, tracer = run_bench(smoke=False)
        return results, _emit(results, table, tracer, results_dir, smoke=False)

    _, checks = benchmark.pedantic(build, rounds=1, iterations=1)
    for name, outcome in checks.items():
        assert outcome["ok"], f"{name}: {outcome['detail']}"


# -- CLI entry point (CI smoke job) ------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small matrix for CI (< 60 s)",
    )
    parser.add_argument("--results-dir", default=_RESULTS_DIR)
    args = parser.parse_args(argv)
    results, table, tracer = run_bench(smoke=args.smoke)
    checks = _emit(results, table, tracer, args.results_dir, smoke=args.smoke)
    failed = {name: c for name, c in checks.items() if not c["ok"]}
    for name, outcome in checks.items():
        status = "ok" if outcome["ok"] else "FAIL"
        print(f"check {name}: {status} — {outcome['detail']}")
    if failed:
        print(f"{len(failed)} check(s) failed", file=sys.stderr)
        return 1
    print(f"BENCH_memory_pressure.json written under {args.results_dir}")
    print(
        f"TRACE_memory_pressure.json written to "
        f"{trace_json_path(args.results_dir, 'memory_pressure')}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
