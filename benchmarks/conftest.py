"""Shared fixtures for the benchmark harness.

The expensive simulations (microbenchmark suite, JSBS, the six Spark
applications on three backends) are computed once per pytest session and
shared by every figure/table benchmark. Each bench prints its reproduced
table and persists it under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List

import pytest

from repro.cereal import CerealAccelerator
from repro.common.config import CerealConfig, HostCPUConfig, SystemConfig
from repro.cpu import SoftwarePlatform
from repro.formats import (
    ClassRegistration,
    JavaSerializer,
    KryoSerializer,
    SkywaySerializer,
)
from repro.jvm import Heap
from repro.spark.apps import SPARK_APPS
from repro.spark.backend import CerealBackend, SoftwareBackend
from repro.workloads import MICROBENCH_CONFIGS, build_media_content, build_microbench
from repro.workloads.micro import register_micro_klasses

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SOFTWARE_SERIALIZERS = ("java-builtin", "kryo", "skyway")


def _make_software(name: str, registry) -> object:
    registration = ClassRegistration()
    for klass in registry:
        registration.register(klass)
    if name == "java-builtin":
        return JavaSerializer()
    if name == "kryo":
        return KryoSerializer(registration)
    if name == "skyway":
        return SkywaySerializer(registration)
    raise ValueError(name)


@dataclass
class MicroMeasurement:
    """One (workload, serializer) measurement pair."""

    serialize_time_ns: float
    deserialize_time_ns: float
    serialize_bandwidth: float  # single-lane utilization fraction
    deserialize_bandwidth: float
    stream_bytes: int
    graph_bytes: int
    objects: int
    serialize_ipc: float = 0.0
    deserialize_ipc: float = 0.0
    llc_miss_rate: float = 0.0
    # Device-level utilization with all 8 units busy (Cereal rows only).
    serialize_bandwidth_8u: float = 0.0
    deserialize_bandwidth_8u: float = 0.0


@dataclass
class MicroSuiteResults:
    """All measurements: results[workload][serializer] -> MicroMeasurement."""

    results: Dict[str, Dict[str, MicroMeasurement]] = field(default_factory=dict)

    def speedup_over_java(self, workload: str, serializer: str, op: str) -> float:
        java = self.results[workload]["java-builtin"]
        other = self.results[workload][serializer]
        if op == "serialize":
            return java.serialize_time_ns / other.serialize_time_ns
        return java.deserialize_time_ns / other.deserialize_time_ns


def _measure_software(name: str, workload: str) -> MicroMeasurement:
    config = MICROBENCH_CONFIGS[workload]
    host = HostCPUConfig().scaled_caches(max(1, config.scale))
    platform = SoftwarePlatform(SystemConfig(host=host))
    heap = Heap(registry=None)
    register_micro_klasses(heap.registry)
    receiver = Heap(registry=heap.registry)
    root = build_microbench(heap, workload)
    serializer = _make_software(name, heap.registry)
    result, ser_run = platform.run_serialize(serializer, root)
    _, de_run = platform.run_deserialize(serializer, result.stream, receiver)
    return MicroMeasurement(
        serialize_time_ns=ser_run.timing.time_ns,
        deserialize_time_ns=de_run.timing.time_ns,
        serialize_bandwidth=ser_run.timing.bandwidth_utilization,
        deserialize_bandwidth=de_run.timing.bandwidth_utilization,
        stream_bytes=result.stream.size_bytes,
        graph_bytes=result.stream.graph_bytes,
        objects=result.stream.object_count,
        serialize_ipc=ser_run.timing.ipc,
        deserialize_ipc=de_run.timing.ipc,
        llc_miss_rate=ser_run.timing.llc_miss_rate,
    )


def _device_utilization(accelerator: CerealAccelerator, root, stream) -> tuple:
    """(ser, deser) device-level utilization with all 8 units busy.

    Simulates eight concurrent operations on the shared memory system via
    :class:`~repro.cereal.device_sim.DeviceSimulator`.
    """
    from repro.cereal.device_sim import DeviceSimulator

    simulator = DeviceSimulator(accelerator)
    pool = accelerator.config.num_serializer_units
    ser_run = simulator.run([("serialize", root)] * pool)
    receivers = [
        Heap(registry=root.heap.registry)
        for _ in range(accelerator.config.num_deserializer_units)
    ]
    de_run = simulator.run(
        [("deserialize", stream, receiver) for receiver in receivers]
    )
    return ser_run.bandwidth_utilization, de_run.bandwidth_utilization


def _measure_cereal(workload: str, vanilla: bool = False) -> MicroMeasurement:
    heap = Heap(registry=None)
    register_micro_klasses(heap.registry)
    receiver = Heap(registry=heap.registry)
    root = build_microbench(heap, workload)
    config = CerealConfig().vanilla() if vanilla else CerealConfig()
    accelerator = CerealAccelerator(config)
    for klass in heap.registry:
        accelerator.register_class(klass)
    result, ser_timing, _ = accelerator.serialize(root)
    _, de_timing, _ = accelerator.deserialize(result.stream, receiver)
    ser_8u, de_8u = _device_utilization(accelerator, root, result.stream)
    return MicroMeasurement(
        serialize_time_ns=ser_timing.elapsed_ns,
        deserialize_time_ns=de_timing.elapsed_ns,
        serialize_bandwidth=ser_timing.bandwidth_utilization,
        deserialize_bandwidth=de_timing.bandwidth_utilization,
        stream_bytes=result.stream.size_bytes,
        graph_bytes=result.stream.graph_bytes,
        objects=result.stream.object_count,
        serialize_bandwidth_8u=ser_8u,
        deserialize_bandwidth_8u=de_8u,
    )


@pytest.fixture(scope="session")
def micro_results() -> MicroSuiteResults:
    suite = MicroSuiteResults()
    for workload in MICROBENCH_CONFIGS:
        row: Dict[str, MicroMeasurement] = {}
        for name in SOFTWARE_SERIALIZERS:
            row[name] = _measure_software(name, workload)
        row["cereal"] = _measure_cereal(workload)
        row["cereal-vanilla"] = _measure_cereal(workload, vanilla=True)
        suite.results[workload] = row
    return suite


@dataclass
class SparkSuiteResults:
    """results[backend][app] -> AppResult; cereal streams kept per app."""

    results: Dict[str, Dict[str, object]] = field(default_factory=dict)
    cereal_streams: Dict[str, list] = field(default_factory=dict)

    def apps(self) -> List[str]:
        return list(SPARK_APPS)


def _spark_backend(name: str):
    if name == "java-builtin":
        return SoftwareBackend(JavaSerializer())
    if name == "kryo":
        return SoftwareBackend(KryoSerializer())
    if name == "cereal":
        return CerealBackend(CerealAccelerator(), keep_streams=True)
    raise ValueError(name)


@pytest.fixture(scope="session")
def spark_results() -> SparkSuiteResults:
    suite = SparkSuiteResults()
    for backend_name in ("java-builtin", "kryo", "cereal"):
        row = {}
        for app_name, runner in SPARK_APPS.items():
            backend = _spark_backend(backend_name)
            row[app_name] = runner(backend)
            if backend_name == "cereal":
                suite.cereal_streams[app_name] = list(backend.streams)
        suite.results[backend_name] = row
    return suite


@dataclass
class JSBSResults:
    """Measured round trips on the MediaContent object."""

    java: MicroMeasurement = None  # type: ignore[assignment]
    kryo: MicroMeasurement = None  # type: ignore[assignment]
    skyway: MicroMeasurement = None  # type: ignore[assignment]
    cereal: MicroMeasurement = None  # type: ignore[assignment]

    def round_trip_ns(self, name: str) -> float:
        m = getattr(self, name)
        return m.serialize_time_ns + m.deserialize_time_ns


def _measure_jsbs(name: str) -> MicroMeasurement:
    heap = Heap(registry=None)
    root = build_media_content(heap)
    receiver = Heap(registry=heap.registry)
    if name == "cereal":
        accelerator = CerealAccelerator()
        for klass in heap.registry:
            accelerator.register_class(klass)
        result, ser_timing, _ = accelerator.serialize(root)
        _, de_timing, _ = accelerator.deserialize(result.stream, receiver)
        return MicroMeasurement(
            serialize_time_ns=ser_timing.elapsed_ns,
            deserialize_time_ns=de_timing.elapsed_ns,
            serialize_bandwidth=ser_timing.bandwidth_utilization,
            deserialize_bandwidth=de_timing.bandwidth_utilization,
            stream_bytes=result.stream.size_bytes,
            graph_bytes=result.stream.graph_bytes,
            objects=result.stream.object_count,
        )
    platform = SoftwarePlatform()
    serializer = _make_software(name, heap.registry)
    result, ser_run = platform.run_serialize(serializer, root)
    _, de_run = platform.run_deserialize(serializer, result.stream, receiver)
    return MicroMeasurement(
        serialize_time_ns=ser_run.timing.time_ns,
        deserialize_time_ns=de_run.timing.time_ns,
        serialize_bandwidth=ser_run.timing.bandwidth_utilization,
        deserialize_bandwidth=de_run.timing.bandwidth_utilization,
        stream_bytes=result.stream.size_bytes,
        graph_bytes=result.stream.graph_bytes,
        objects=result.stream.object_count,
    )


@pytest.fixture(scope="session")
def jsbs_results() -> JSBSResults:
    return JSBSResults(
        java=_measure_jsbs("java-builtin"),
        kryo=_measure_jsbs("kryo"),
        skyway=_measure_jsbs("skyway"),
        cereal=_measure_jsbs("cereal"),
    )


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
