"""Ablation — parallelism levels in the accelerator (Section V-D).

Sweeps the DU's block-reconstructor count and toggles SU pipelining to
show where Figure 10's "Cereal vs Cereal Vanilla" gap comes from, plus an
operation-level-parallelism sweep over the unit-pool size.
"""

from repro.analysis import ReportTable
from repro.cereal import CerealAccelerator
from repro.common.config import CerealConfig
from repro.jvm import Heap
from repro.workloads import build_microbench
from repro.workloads.micro import register_micro_klasses

_WORKLOAD = "tree-narrow"


def _setup():
    heap = Heap()
    register_micro_klasses(heap.registry)
    root = build_microbench(heap, _WORKLOAD)
    return heap, root


def _accelerator(config, registry):
    accelerator = CerealAccelerator(config)
    for klass in registry:
        accelerator.register_class(klass)
    return accelerator


def test_ablation_block_reconstructors(benchmark, results_dir):
    def build():
        heap, root = _setup()
        base = _accelerator(CerealConfig(), heap.registry)
        stream = base.serialize(root)[0].stream
        table = ReportTable(
            "Ablation: DU block reconstructors",
            ["Reconstructors", "Deserialize (us)", "Speedup vs 1"],
        )
        times = {}
        for count in (1, 2, 4, 8):
            accelerator = _accelerator(
                CerealConfig(block_reconstructors_per_du=count),
                heap.registry,
            )
            receiver = Heap(registry=heap.registry)
            _, timing, _ = accelerator.deserialize(stream, receiver)
            times[count] = timing.elapsed_ns
            table.add_row(
                count,
                f"{timing.elapsed_ns / 1000:.2f}",
                f"{times[1] / timing.elapsed_ns:.2f}x",
            )
        table.add_note("paper configuration: 4 reconstructors per DU")
        table.show()
        table.save(results_dir, "ablation_reconstructors")
        return times

    times = benchmark.pedantic(build, rounds=1, iterations=1)
    assert times[4] <= times[1]  # more reconstructors never hurt
    # Diminishing returns: the 4->8 step buys less than 1->4.
    gain_1_4 = times[1] / times[4]
    gain_4_8 = times[4] / times[8]
    assert gain_4_8 <= gain_1_4 + 0.05


def test_ablation_du_prefetch_depth(benchmark, results_dir):
    """Stream-loader buffer depth vs the shared memory path.

    Shallow buffers leave the loaders latency-bound; around depth 4 the
    shared DRAM path (three read streams plus the reconstructors' 64 B
    writes) becomes the bound and further depth buys nothing.
    """

    def build():
        heap, root = _setup()
        base = _accelerator(CerealConfig(), heap.registry)
        stream = base.serialize(root)[0].stream
        table = ReportTable(
            "Ablation: DU stream-loader prefetch depth",
            ["Depth", "Deserialize (us)", "Speedup vs 1"],
        )
        times = {}
        for depth in (1, 4, 8, 16, 32):
            accelerator = _accelerator(
                CerealConfig(du_prefetch_depth=depth), heap.registry
            )
            receiver = Heap(registry=heap.registry)
            _, timing, _ = accelerator.deserialize(stream, receiver)
            times[depth] = timing.elapsed_ns
            table.add_row(
                depth,
                f"{timing.elapsed_ns / 1000:.2f}",
                f"{times[1] / timing.elapsed_ns:.2f}x",
            )
        table.add_note("default depth: 8 (sized to the loaders' buffers)")
        table.show()
        table.save(results_dir, "ablation_prefetch_depth")
        return times

    times = benchmark.pedantic(build, rounds=1, iterations=1)
    assert times[8] < times[1]  # deeper prefetch hides DRAM latency
    assert times[32] <= times[8] * 1.001  # monotone (saturates)
    # Beyond depth ~4 the shared memory path is the bound, so gains level
    # off — the same effect that caps a DU at ~25 ns/block (Figure 10).
    assert times[1] / times[8] > 1.2


def test_ablation_su_pipelining(benchmark, results_dir):
    def build():
        heap, root = _setup()
        pipelined = _accelerator(CerealConfig(), heap.registry)
        vanilla = _accelerator(CerealConfig().vanilla(), heap.registry)
        _, t_pipe, _ = pipelined.serialize(root)
        _, t_vanilla, _ = vanilla.serialize(root)
        table = ReportTable(
            "Ablation: SU pipelining",
            ["Configuration", "Serialize (us)"],
        )
        table.add_row("pipelined", f"{t_pipe.elapsed_ns / 1000:.2f}")
        table.add_row("vanilla (no overlap)", f"{t_vanilla.elapsed_ns / 1000:.2f}")
        table.show()
        table.save(results_dir, "ablation_pipelining")
        return t_pipe.elapsed_ns, t_vanilla.elapsed_ns

    pipe_ns, vanilla_ns = benchmark.pedantic(build, rounds=1, iterations=1)
    assert vanilla_ns > 1.2 * pipe_ns


def test_ablation_operation_level_parallelism(benchmark, results_dir):
    def build():
        heap, root = _setup()
        accelerator = _accelerator(CerealConfig(), heap.registry)
        _, timing, _ = accelerator.serialize(root)
        table = ReportTable(
            "Ablation: unit-pool size for 16 concurrent serialize ops",
            ["SUs", "Batch time (us)", "Scaling vs 1 SU"],
        )
        results = {}
        for units in (1, 2, 4, 8):
            config = CerealConfig(num_serializer_units=units)
            pool = CerealAccelerator(config, registration=accelerator.registration)
            batch_ns = pool.run_batch([timing] * 16)
            results[units] = batch_ns
            table.add_row(
                units,
                f"{batch_ns / 1000:.1f}",
                f"{results[1] / batch_ns:.2f}x",
            )
        table.show()
        table.save(results_dir, "ablation_unit_pool")
        return results

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    assert results[8] < results[1]
    # Near-linear until the batch no longer fills the pool.
    assert results[1] / results[8] > 4
