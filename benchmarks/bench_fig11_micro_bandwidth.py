"""Figure 11 — DRAM bandwidth utilization on microbenchmarks.

Paper: Java S/D and Kryo use 2.7-4.5% of the 76.8 GB/s peak; Cereal (with
its 8-unit pools busy) reaches 20.9% average (up to 74.5%) when
serializing and 31.1% average (up to 83.3%) when deserializing.
"""

from repro.analysis import ReportTable
from repro.workloads import MICROBENCH_CONFIGS


def _bandwidth_table(micro_results, results_dir):
    table = ReportTable(
        "Figure 11: bandwidth utilization (ser / deser)",
        ["Workload", "Java S/D", "Kryo", "Cereal (device)"],
    )
    cereal_ser, cereal_de = [], []
    software = []
    for workload in MICROBENCH_CONFIGS:
        row = micro_results.results[workload]
        java, kryo, cereal = row["java-builtin"], row["kryo"], row["cereal"]
        cereal_ser.append(cereal.serialize_bandwidth_8u)
        cereal_de.append(cereal.deserialize_bandwidth_8u)
        software.extend(
            [java.serialize_bandwidth, java.deserialize_bandwidth,
             kryo.serialize_bandwidth, kryo.deserialize_bandwidth]
        )
        table.add_row(
            workload,
            f"{java.serialize_bandwidth * 100:.2f} / {java.deserialize_bandwidth * 100:.2f}%",
            f"{kryo.serialize_bandwidth * 100:.2f} / {kryo.deserialize_bandwidth * 100:.2f}%",
            f"{cereal.serialize_bandwidth_8u * 100:.1f} / {cereal.deserialize_bandwidth_8u * 100:.1f}%",
        )
    table.add_note("Cereal column: all 8 SUs / 8 DUs busy (device level)")
    table.show()
    table.save(results_dir, "fig11_bandwidth")
    return software, cereal_ser, cereal_de


def test_fig11_bandwidth_utilization(benchmark, micro_results, results_dir):
    software, cereal_ser, cereal_de = benchmark.pedantic(
        _bandwidth_table, args=(micro_results, results_dir), rounds=1, iterations=1
    )
    avg_ser = sum(cereal_ser) / len(cereal_ser)
    avg_de = sum(cereal_de) / len(cereal_de)
    # The accelerator uses an order of magnitude more bandwidth than software.
    assert avg_ser > 4 * max(software)
    assert avg_de > avg_ser  # deserialization streams harder (paper)
    assert 0.08 < avg_ser < 0.6  # paper: 20.9% average
    assert 0.1 < avg_de < 0.9  # paper: 31.1% average


def test_fig11_software_is_starved(benchmark, micro_results, results_dir):
    def worst():
        return max(
            max(m.serialize_bandwidth, m.deserialize_bandwidth)
            for row in micro_results.results.values()
            for name, m in row.items()
            if name in ("java-builtin", "kryo")
        )

    assert benchmark(worst) < 0.12
