"""Figure 16 — Compression rate of Cereal's object packing scheme.

Paper: packing the reference offsets and layout bitmaps (plus optional
mark-word stripping) reduces the stream by 28.3% on average versus the
baseline format of Section IV-A; reference-rich NWeight compresses best,
while value-dominated ML apps (SVM, Bayes, LR) barely change.
"""

from repro.analysis import ReportTable
from repro.formats.cereal_format import CerealSerializer


def _baseline_bytes(sections) -> int:
    """Size of the unpacked Section IV-A format for the same stream.

    References stored as 8 B relative addresses; each object's layout
    bitmap stored with an 8 B length word plus the raw bitmap bytes —
    exactly what ``CerealSerializer(use_packing=False)`` emits.
    """
    value_bytes = len(sections.value_words) * 8
    reference_bytes = sections.reference_count * 8
    bitmap_bytes = sum(
        8 + (len(bitmap) + 7) // 8 for bitmap in sections.layout_bitmaps()
    )
    metadata = 9  # graph size + object count + flags
    return value_bytes + reference_bytes + bitmap_bytes + metadata


def _packed_bytes(sections) -> int:
    return (
        len(sections.value_words) * 8
        + sections.references.total_bytes
        + sections.bitmaps.total_bytes
        + 9
    )


def _app_compression(streams):
    baseline = 0
    packed = 0
    header_strip = 0
    for stream in streams:
        sections = CerealSerializer.decode_sections(stream)
        baseline += _baseline_bytes(sections)
        packed += _packed_bytes(sections)
        header_strip += _packed_bytes(sections) - 8 * sections.object_count
    return baseline, packed, header_strip


def test_fig16_compression_rate(benchmark, spark_results, results_dir):
    def build():
        table = ReportTable(
            "Figure 16: packing compression rate per Spark app",
            ["App", "Packing", "Packing + header strip"],
        )
        rates = {}
        for app, streams in spark_results.cereal_streams.items():
            baseline, packed, stripped = _app_compression(streams)
            packing_rate = 1.0 - packed / baseline
            strip_rate = 1.0 - stripped / baseline
            rates[app] = (packing_rate, strip_rate)
            table.add_row(
                app, f"{packing_rate * 100:.1f}%", f"{strip_rate * 100:.1f}%"
            )
        average = sum(rate for rate, _ in rates.values()) / len(rates)
        table.add_note(f"average packing rate {average * 100:.1f}% (paper: 28.3%)")
        table.show()
        table.save(results_dir, "fig16_compression")
        return rates, average

    rates, average = benchmark.pedantic(build, rounds=1, iterations=1)
    assert 0.1 < average < 0.5  # paper: 28.3% average
    # Header stripping always helps on top of packing.
    for packing_rate, strip_rate in rates.values():
        assert strip_rate > packing_rate
        assert packing_rate > 0.0


def test_fig16_nweight_compresses_best(benchmark, spark_results, results_dir):
    """The reference-rich graph app benefits most from reference packing."""

    def best():
        rates = {}
        for app, streams in spark_results.cereal_streams.items():
            baseline, packed, _ = _app_compression(streams)
            rates[app] = 1.0 - packed / baseline
        value_apps = [rates[app] for app in ("svm", "lr")]
        return rates["nweight"], max(value_apps)

    nweight, best_value_app = benchmark(best)
    assert nweight > best_value_app
