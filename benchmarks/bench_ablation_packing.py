"""Ablation — object packing on/off (Section IV-A baseline vs IV-B packed).

Quantifies what the packing scheme buys on each microbenchmark: the
baseline format stores 8 B reference offsets and an 8 B layout-bitmap
length per object; packing keeps significant bits plus end bits/maps.
"""

from repro.analysis import ReportTable
from repro.formats import ClassRegistration, CerealSerializer
from repro.jvm import Heap
from repro.workloads import MICROBENCH_CONFIGS, build_microbench
from repro.workloads.micro import register_micro_klasses


def _sizes(workload):
    """Serialize with both real formats; return (values, baseline, packed)
    where baseline/packed are the metadata (references + bitmaps) bytes of
    the Section IV-A and IV-B encodings respectively."""
    heap = Heap()
    register_micro_klasses(heap.registry)
    root = build_microbench(heap, workload)
    registration = ClassRegistration()
    for klass in heap.registry:
        registration.register(klass)
    packed_stream = CerealSerializer(registration).serialize(root).stream
    baseline_stream = (
        CerealSerializer(registration, use_packing=False).serialize(root).stream
    )
    packed = (
        packed_stream.sections["reference_array"]
        + packed_stream.sections["reference_end_map"]
        + packed_stream.sections["layout_bitmap"]
        + packed_stream.sections["bitmap_end_map"]
    )
    baseline = (
        baseline_stream.sections["reference_array"]
        + baseline_stream.sections["layout_bitmap"]
    )
    values = packed_stream.sections["value_array"]
    return values, baseline, packed


def test_ablation_packing_metadata_savings(benchmark, results_dir):
    def build():
        table = ReportTable(
            "Ablation: packed vs baseline metadata (refs + bitmaps)",
            ["Workload", "Values (KiB)", "Baseline meta", "Packed meta", "Saving"],
        )
        savings = {}
        for workload in MICROBENCH_CONFIGS:
            values, baseline, packed = _sizes(workload)
            saving = 1.0 - packed / baseline
            savings[workload] = saving
            table.add_row(
                workload,
                f"{values / 1024:.1f}",
                f"{baseline / 1024:.1f} KiB",
                f"{packed / 1024:.1f} KiB",
                f"{saving * 100:.1f}%",
            )
        table.show()
        table.save(results_dir, "ablation_packing")
        return savings

    savings = benchmark.pedantic(build, rounds=1, iterations=1)
    # Packing always shrinks the metadata, everywhere.
    assert all(saving > 0.3 for saving in savings.values())
    # And pays off most where references dominate.
    assert savings["graph-dense"] >= savings["list-small"] - 0.15


def test_ablation_packing_whole_stream_effect(benchmark, results_dir):
    """Per-stream effect: metadata savings matter less on value-heavy shapes."""

    def effect(workload):
        values, baseline, packed = _sizes(workload)
        whole_baseline = values + baseline
        whole_packed = values + packed
        return 1.0 - whole_packed / whole_baseline

    def build():
        return effect("graph-dense"), effect("list-large")

    dense, list_large = benchmark(build)
    assert dense > list_large
