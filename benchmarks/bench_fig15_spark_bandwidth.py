"""Figure 15 — Bandwidth utilization during Spark S/D operations.

Paper: the trends mirror the microbenchmarks — Cereal uses substantially
more memory bandwidth than the software schemes, and deserialization
significantly more than serialization.
"""

from repro.analysis import ReportTable
from repro.common.config import DRAMConfig

_PEAK = DRAMConfig().peak_bandwidth_bytes_per_sec


def _utilization(result, kind, unit_pool=1):
    """Aggregate DRAM bytes / S/D *kernel* time for one app run.

    Kernel time excludes the serializer-independent framework stream path,
    so this measures what the serializer engine itself demands of DRAM
    while active — the quantity Figure 15 plots.
    """
    ops = [op for op in result.breakdown.operations if op.kind == kind]
    if not ops:
        return 0.0
    total_bytes = sum(op.dram_bytes for op in ops)
    total_time = sum(op.kernel_time_ns for op in ops)
    if total_time <= 0:
        return 0.0
    achieved = total_bytes / (total_time * 1e-9) * unit_pool
    return min(1.0, achieved / _PEAK)


def test_fig15_spark_bandwidth(benchmark, spark_results, results_dir):
    def build():
        table = ReportTable(
            "Figure 15: Spark S/D bandwidth utilization (ser / deser)",
            ["App", "Java S/D", "Kryo", "Cereal (device)"],
        )
        rows = {}
        for app in spark_results.apps():
            java = spark_results.results["java-builtin"][app]
            kryo = spark_results.results["kryo"][app]
            cereal = spark_results.results["cereal"][app]
            rows[app] = {
                "java": (_utilization(java, "serialize"), _utilization(java, "deserialize")),
                "kryo": (_utilization(kryo, "serialize"), _utilization(kryo, "deserialize")),
                # The device runs its 8-unit pools on concurrent partitions.
                "cereal": (
                    _utilization(cereal, "serialize", unit_pool=8),
                    _utilization(cereal, "deserialize", unit_pool=8),
                ),
            }
            table.add_row(
                app,
                f"{rows[app]['java'][0] * 100:.2f} / {rows[app]['java'][1] * 100:.2f}%",
                f"{rows[app]['kryo'][0] * 100:.2f} / {rows[app]['kryo'][1] * 100:.2f}%",
                f"{rows[app]['cereal'][0] * 100:.1f} / {rows[app]['cereal'][1] * 100:.1f}%",
            )
        table.show()
        table.save(results_dir, "fig15_spark_bandwidth")
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    for app, row in rows.items():
        # Cereal uses substantially more bandwidth than either software path.
        assert row["cereal"][0] > row["java"][0]
        assert row["cereal"][1] > row["java"][1]
    # Deserialization streams harder than serialization for Cereal on average.
    avg_ser = sum(r["cereal"][0] for r in rows.values()) / len(rows)
    avg_de = sum(r["cereal"][1] for r in rows.values()) / len(rows)
    assert avg_de > avg_ser
