"""Adversarial-decode robustness bench with hard rejection gates.

Feeds the seeded malicious corpus from :mod:`repro.formats.adversarial`
through :func:`repro.formats.secure.secure_deserialize` and gates on the
hardening contract rather than on speed:

1. **Typed rejection** — every sample either decodes cleanly or raises a
   typed :class:`~repro.common.errors.FormatError` subtype. Any other
   exception escaping the decoder is an untyped crash and fails the run.
2. **No partial heap mutation** — after every rejected decode the
   destination heap's allocation pointer and object table must be exactly
   what they were before the attempt.
3. **Must-reject coverage** — samples flagged ``must_reject`` (truncations
   and the crafted attacks) are provably invalid; accepting one fails.
4. **Trusted-path overhead** — hardened decode of a *valid* stream, and
   the versioned identity fast path, are timed against the raw decoder;
   the overhead ratio is recorded and gated loosely (hardening must stay
   cheap, not free).

Results land in ``benchmarks/results/BENCH_adversarial.json`` with a
rejection breakdown by format and by reason.

Run standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_adversarial.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict

if __name__ == "__main__":  # allow `python benchmarks/bench_adversarial.py`
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _emit import emit_json, runtime_snapshot  # noqa: E402
from repro.common.errors import FormatError  # noqa: E402
from repro.formats.adversarial import (  # noqa: E402
    DEFAULT_SEED,
    as_stream,
    build_corpus,
)
from repro.formats.secure import (  # noqa: E402
    VersionedKryo,
    classify_rejection,
    decode_stats,
    secure_deserialize,
)
from repro.formats.kryo import KryoSerializer  # noqa: E402

_RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
# Hardened decode of a trusted stream must cost < 5% over the raw decoder;
# the bench gate is looser than the acceptance target to absorb timer noise
# on loaded CI hosts.
_OVERHEAD_GATE = 1.25


def run_corpus(seed: int, truncations: int, bitflips: int, garbage: int) -> Dict:
    corpus = build_corpus(
        seed=seed, truncations=truncations, bitflips=bitflips, garbage=garbage
    )
    by_format: Dict[str, Dict[str, int]] = {}
    by_reason: Dict[str, int] = {}
    untyped_crashes = []
    heap_mutations = []
    must_reject_escapes = []
    accepted = rejected = 0

    serializers = {
        name: corpus.serializer_for(name) for name in corpus.by_format()
    }
    for sample in corpus.samples:
        heap = corpus.fresh_heap()
        serializer = serializers[sample.format_name]
        before = heap.checkpoint()
        fmt = by_format.setdefault(
            sample.format_name, {"accepted": 0, "rejected": 0}
        )
        try:
            secure_deserialize(
                serializer, as_stream(sample.format_name, sample.data), heap
            )
        except FormatError as error:
            rejected += 1
            fmt["rejected"] += 1
            reason = classify_rejection(error)
            by_reason[reason] = by_reason.get(reason, 0) + 1
            after = heap.checkpoint()
            if (after.alloc_ptr, after.alloc_count) != (
                before.alloc_ptr,
                before.alloc_count,
            ):
                heap_mutations.append(sample.name)
        except Exception as error:  # noqa: BLE001 - the gate itself
            untyped_crashes.append(f"{sample.name}: {type(error).__name__}")
        else:
            accepted += 1
            fmt["accepted"] += 1
            if sample.must_reject:
                must_reject_escapes.append(sample.name)

    return {
        "samples": len(corpus.samples),
        "accepted": accepted,
        "rejected": rejected,
        "rejected_by_reason": dict(sorted(by_reason.items())),
        "by_format": {k: by_format[k] for k in sorted(by_format)},
        "untyped_crashes": untyped_crashes,
        "heap_mutations_after_rejection": heap_mutations,
        "must_reject_escapes": must_reject_escapes,
    }


def measure_overhead(repeats: int) -> Dict:
    """Time valid-stream decode: raw vs hardened vs versioned identity."""
    corpus = build_corpus(truncations=0, bitflips=0, garbage=0)
    plain = KryoSerializer(registration=corpus.registration)
    versioned = VersionedKryo(registration=corpus.registration)

    source = corpus.fresh_heap()
    from repro.workloads.micro import build_microbench

    root = build_microbench(source, "tree-narrow")
    plain_stream = plain.serialize(root).stream
    versioned_stream = versioned.serialize(root).stream

    def timed(serializer, stream, secure: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            heap = corpus.fresh_heap()
            start = time.perf_counter()
            if secure:
                secure_deserialize(serializer, stream, heap)
            else:
                serializer.deserialize(stream, heap)
            best = min(best, time.perf_counter() - start)
        return best

    raw = timed(plain, plain_stream, secure=False)
    hardened = timed(plain, plain_stream, secure=True)
    identity = timed(versioned, versioned_stream, secure=True)
    return {
        "raw_decode_s": raw,
        "hardened_decode_s": hardened,
        "versioned_identity_decode_s": identity,
        "hardened_overhead_ratio": hardened / raw if raw else float("inf"),
        "versioned_overhead_ratio": identity / raw if raw else float("inf"),
        "stream_bytes": len(plain_stream.data),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small fast run")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    args = parser.parse_args(argv)

    if args.smoke:
        truncations, bitflips, garbage, repeats = 4, 4, 2, 3
    else:
        truncations, bitflips, garbage, repeats = 16, 16, 8, 7

    corpus_results = run_corpus(args.seed, truncations, bitflips, garbage)
    overhead = measure_overhead(repeats)

    checks = {
        "typed_rejection": {
            "ok": not corpus_results["untyped_crashes"],
            "detail": f"{len(corpus_results['untyped_crashes'])} untyped crashes",
        },
        "no_partial_heap_mutation": {
            "ok": not corpus_results["heap_mutations_after_rejection"],
            "detail": (
                f"{len(corpus_results['heap_mutations_after_rejection'])} "
                "heaps mutated after a rejected decode"
            ),
        },
        "must_reject_rejected": {
            "ok": not corpus_results["must_reject_escapes"],
            "detail": (
                f"{len(corpus_results['must_reject_escapes'])} provably "
                "invalid streams accepted"
            ),
        },
        "hardening_overhead": {
            "ok": overhead["hardened_overhead_ratio"] <= _OVERHEAD_GATE,
            "detail": (
                f"hardened/raw = {overhead['hardened_overhead_ratio']:.3f} "
                f"(gate {_OVERHEAD_GATE:.2f})"
            ),
        },
    }

    path = emit_json(
        _RESULTS_DIR,
        "adversarial",
        results={"corpus": corpus_results, "overhead": overhead,
                 "decode_stats": decode_stats()},
        meta={
            "seed": args.seed,
            "smoke": args.smoke,
            "truncations": truncations,
            "bitflips": bitflips,
            "garbage": garbage,
            "repeats": repeats,
        },
        checks=checks,
        runtime=runtime_snapshot(),
    )

    print(f"adversarial corpus: {corpus_results['samples']} samples, "
          f"{corpus_results['rejected']} rejected, "
          f"{corpus_results['accepted']} accepted")
    print(f"rejection breakdown: {corpus_results['rejected_by_reason']}")
    print(f"hardened overhead: {overhead['hardened_overhead_ratio']:.3f}x, "
          f"versioned identity: {overhead['versioned_overhead_ratio']:.3f}x")
    print(f"wrote {path}")

    failed = [name for name, check in checks.items() if not check["ok"]]
    for name in failed:
        print(f"FAIL {name}: {checks[name]['detail']}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
