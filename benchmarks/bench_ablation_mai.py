"""Ablation — MAI request coalescing and entry count (Section V-A).

The MAI's 64-entry associative memory coalesces repeat accesses to 32 B
blocks (repeated klass-metadata fetches, shared-object header reads).
Disabling coalescing or shrinking the tracker shows its contribution.
"""

from repro.analysis import ReportTable
from repro.cereal.mai import MemoryAccessInterface
from repro.cereal.su import SerializationUnit
from repro.cereal.tables import KlassPointerTable
from repro.common.config import CerealConfig
from repro.formats import ClassRegistration
from repro.jvm import Heap
from repro.memory.dram import DRAMModel
from repro.workloads import build_microbench
from repro.workloads.micro import register_micro_klasses


def _run_su(root, registration, coalescing=True, mai_entries=64):
    config = CerealConfig(mai_entries=mai_entries)
    mai = MemoryAccessInterface(DRAMModel(), config, coalescing=coalescing)
    table = KlassPointerTable()
    for class_id, klass in enumerate(registration):
        table.install(klass.metaspace_address, class_id)
    unit = SerializationUnit(mai, table, config)
    # Each run needs its own visited-tracking epoch, or the second run
    # would see the first run's header marks (Section V-E).
    epoch = root.heap.next_serialization_epoch()
    result = unit.run(root, registration, serialization_counter=epoch)
    return result, mai


def _setup(workload="tree-narrow"):
    heap = Heap()
    register_micro_klasses(heap.registry)
    root = build_microbench(heap, workload)
    registration = ClassRegistration()
    for klass in heap.registry:
        registration.register(klass)
    return root, registration


def test_ablation_mai_coalescing(benchmark, results_dir):
    def build():
        root, registration = _setup()
        with_coalescing, mai_on = _run_su(root, registration, coalescing=True)
        without, mai_off = _run_su(root, registration, coalescing=False)
        table = ReportTable(
            "Ablation: MAI coalescing (tree-narrow serialization)",
            ["Configuration", "Time (us)", "DRAM blocks read", "Coalesced"],
        )
        table.add_row(
            "coalescing on",
            f"{with_coalescing.elapsed_ns / 1000:.2f}",
            mai_on.stats.blocks_read,
            mai_on.stats.coalesced_blocks,
        )
        table.add_row(
            "coalescing off",
            f"{without.elapsed_ns / 1000:.2f}",
            mai_off.stats.blocks_read,
            mai_off.stats.coalesced_blocks,
        )
        table.show()
        table.save(results_dir, "ablation_mai_coalescing")
        return with_coalescing, without, mai_on, mai_off

    with_c, without, mai_on, mai_off = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    assert with_c.elapsed_ns < without.elapsed_ns
    assert mai_on.stats.coalesced_blocks > 0
    assert mai_on.stats.blocks_read < mai_off.stats.blocks_read


def test_ablation_mai_entry_count(benchmark, results_dir):
    def build():
        root, registration = _setup("graph-dense")
        table = ReportTable(
            "Ablation: MAI entries (graph-dense serialization)",
            ["Entries", "Time (ms)", "Coalescing rate"],
        )
        times = {}
        for entries in (8, 64, 256):
            result, mai = _run_su(root, registration, mai_entries=entries)
            times[entries] = result.elapsed_ns
            table.add_row(
                entries,
                f"{result.elapsed_ns / 1e6:.3f}",
                f"{mai.stats.coalescing_rate * 100:.1f}%",
            )
        table.add_note("paper configuration: 64 entries")
        table.show()
        table.save(results_dir, "ablation_mai_entries")
        return times

    times = benchmark.pedantic(build, rounds=1, iterations=1)
    # A larger window can only help (more coalescing opportunities kept).
    assert times[64] <= times[8] * 1.01
    assert times[256] <= times[64] * 1.01
