#!/usr/bin/env python
"""Inspect the Cereal serialization format (paper Figures 4 and 5).

Serializes a tiny object graph, decodes the stream back into its three
decoupled structures — value array, packed reference array, packed layout
bitmaps — and walks through the packing scheme bit by bit.

Run:  python examples/format_inspection.py
"""

from repro.common.bitutils import bytes_to_bits
from repro.formats import CerealSerializer, ClassRegistration
from repro.formats.cereal_format import CerealSerializer as CS
from repro.formats.packing import pack_items, unpack_bitmaps, unpack_items
from repro.jvm import FieldDescriptor, FieldKind, Heap, InstanceKlass


def main():
    heap = Heap()
    heap.registry.register(
        InstanceKlass(
            "Pair",
            [
                FieldDescriptor("value", FieldKind.LONG),
                FieldDescriptor("partner", FieldKind.REFERENCE),
            ],
        )
    )
    # objA -> objB -> objC, objB also points back at objA (a cycle).
    obj_a = heap.new_instance("Pair")
    obj_b = heap.new_instance("Pair")
    obj_c = heap.new_instance("Pair")
    obj_a.set("value", 0xAAAA)
    obj_b.set("value", 0xBBBB)
    obj_c.set("value", 0xCCCC)
    obj_a.set("partner", obj_b)
    obj_b.set("partner", obj_a)
    obj_c.set("partner", None)
    obj_a_layout = obj_a.layout_bitmap()
    print(f"objA layout bitmap (1 bit per 8 B slot): {obj_a_layout}")
    print(f"  -> object size = {len(obj_a_layout)} slots x 8 B = {obj_a.size_bytes} B\n")

    registration = ClassRegistration()
    for klass in heap.registry:
        registration.register(klass)
    serializer = CerealSerializer(registration)
    stream = serializer.serialize(obj_a).stream

    print("stream sections (bytes):")
    for section, size in stream.sections.items():
        print(f"  {section:20s} {size:5d}")
    print()

    sections = CS.decode_sections(stream)
    print(f"graph total: {sections.graph_total_bytes} B, "
          f"{sections.object_count} objects")
    print(f"value array words: {[hex(w) for w in sections.value_words]}")

    references = unpack_items(sections.references)
    print(f"reference array (relative+1, 0=null): {references}")
    bitmaps = unpack_bitmaps(sections.bitmaps)
    print(f"layout bitmaps: {bitmaps}\n")

    # The packing scheme by hand (Figure 5a).
    values = [5, 300, 0]
    packed = pack_items(values)
    print(f"packing {values}:")
    print(f"  packed bytes : {packed.data.hex()} "
          f"({bytes_to_bits(packed.data)})")
    print(f"  end map      : {packed.end_map.hex()} "
          f"({bytes_to_bits(packed.end_map, bit_count=len(packed.data))})")
    print(f"  unpacked     : {unpack_items(packed)}")
    fixed = len(values) * 8
    print(f"  {packed.total_bytes} B packed vs {fixed} B at fixed 8 B slots")


if __name__ == "__main__":
    main()
