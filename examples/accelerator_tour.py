#!/usr/bin/env python
"""Tour of the Cereal accelerator's cycle model and its knobs.

Walks one workload through: the SU pipeline's per-stage accounting, the
DU's block pipeline, configuration sweeps (reconstructors, prefetch depth,
pipelining), operation-level parallelism across the unit pools, and the
Section V-E mechanisms (epochs, shared-object fallback).

Run:  python examples/accelerator_tour.py
"""

from repro.cereal import CerealAccelerator
from repro.common.config import CerealConfig
from repro.jvm import FieldKind, Heap
from repro.workloads import build_microbench
from repro.workloads.micro import register_micro_klasses


def make_accelerator(config, registration):
    accelerator = CerealAccelerator(config, registration=registration)
    return accelerator


def main():
    heap = Heap()
    register_micro_klasses(heap.registry)
    root = build_microbench(heap, "tree-narrow")

    base = CerealAccelerator()
    for klass in heap.registry:
        base.register_class(klass)

    # -- one serialization, dissected -------------------------------------
    result, timing, su = base.serialize(root)
    print("serialization of tree-narrow "
          f"({su.objects} objects, {result.stream.graph_bytes} B graph):")
    print(f"  elapsed          {timing.elapsed_ns / 1000:8.2f} us "
          f"({timing.elapsed_ns / su.objects:.1f} ns/object)")
    print(f"  encounters       {su.encounters} (queue pops incl. revisits)")
    print(f"  counter stalls   {su.stalls_on_counter_ns / 1000:8.2f} us "
          f"(HM waiting on OMM size updates)")
    print(f"  heap read        {su.heap_bytes_read} B; stream written "
          f"{su.stream_bytes_written} B")
    print(f"  bandwidth        {timing.bandwidth_utilization * 100:.1f}% "
          f"(single SU of {base.config.num_serializer_units})\n")

    # -- one deserialization ------------------------------------------------
    receiver = Heap(registry=heap.registry)
    _, de_timing, du = base.deserialize(result.stream, receiver)
    print(f"deserialization: {de_timing.elapsed_ns / 1000:.2f} us over "
          f"{du.blocks} blocks ({de_timing.elapsed_ns / du.blocks:.1f} ns/block), "
          f"bandwidth {de_timing.bandwidth_utilization * 100:.1f}%\n")

    # -- configuration sweeps ------------------------------------------------
    print("DU sweep (reconstructors x prefetch depth), deserialize us:")
    print("        depth=1  depth=8")
    for reconstructors in (1, 4):
        row = [f"rec={reconstructors}"]
        for depth in (1, 8):
            acc = make_accelerator(
                CerealConfig(
                    block_reconstructors_per_du=reconstructors,
                    du_prefetch_depth=depth,
                ),
                base.registration,
            )
            _, t, _ = acc.deserialize(result.stream, Heap(registry=heap.registry))
            row.append(f"{t.elapsed_ns / 1000:7.2f}")
        print("  " + "  ".join(row))
    vanilla = make_accelerator(CerealConfig().vanilla(), base.registration)
    _, tv, _ = vanilla.serialize(root)
    print(f"  vanilla (no pipelining) serialize: {tv.elapsed_ns / 1000:.2f} us "
          f"vs {timing.elapsed_ns / 1000:.2f} us pipelined\n")

    # -- operation-level parallelism ---------------------------------------------
    print("16 concurrent serialize ops across the SU pool:")
    for units in (1, 4, 8):
        pool = make_accelerator(
            CerealConfig(num_serializer_units=units), base.registration
        )
        batch_ns = pool.run_batch([timing] * 16)
        print(f"  {units} SUs: {batch_ns / 1000:8.1f} us")
    print()

    # -- the shared-DRAM device simulation -----------------------------------------
    from repro.cereal import DeviceSimulator

    simulator = DeviceSimulator(base)
    wave = simulator.run([("serialize", root)] * 8)
    print("8 concurrent serializations on the simulated device:")
    print(f"  wall {wave.wall_time_ns / 1000:.1f} us, device bandwidth "
          f"{wave.bandwidth_utilization * 100:.1f}% of DDR4 peak")
    receivers = [Heap(registry=heap.registry) for _ in range(8)]
    deser_wave = simulator.run(
        [("deserialize", op.stream, r) for op, r in zip(wave.operations, receivers)]
    )
    print(f"8 concurrent deserializations: wall {deser_wave.wall_time_ns / 1000:.1f} us, "
          f"bandwidth {deser_wave.bandwidth_utilization * 100:.1f}%\n")

    # -- Section V-E: epochs and shared objects ------------------------------------
    shared = build_microbench(heap, "list-small")
    root_a = heap.new_instance("GraphNode")
    root_b = heap.new_instance("GraphNode")
    # Both roots reach the same list through their adjacency reference.
    arr_a = heap.new_array(FieldKind.REFERENCE, 1)
    arr_b = heap.new_array(FieldKind.REFERENCE, 1)
    arr_a.set_element(0, shared)
    arr_b.set_element(0, shared)
    root_a.set("adjacency", arr_a)
    root_b.set("adjacency", arr_b)
    results = base.serialize_concurrent([root_a, root_b])
    for index, (_, t, unit_result) in enumerate(results):
        print(f"concurrent op {index}: {t.elapsed_ns / 1000:7.2f} us, "
              f"fallback objects {unit_result.fallback_objects}")
    print(f"heap serialization epoch now {heap._serialization_epoch}, "
          f"forced GCs {heap.forced_gc_count}")


if __name__ == "__main__":
    main()
