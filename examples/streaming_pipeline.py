#!/usr/bin/env python
"""Threaded streaming pipeline: bounded encode -> queue -> reassembly.

A producer thread runs a resumable chunked encode
(:func:`repro.formats.encode_cursor`) against a small arena pool with
``block=True``, CRC-frames each sealed chunk, and hands it to a
:class:`repro.formats.BoundedChunkQueue`. The consumer (main thread)
pulls framed chunks off the queue and feeds them to a
:class:`repro.formats.ChunkAssembler`, which verifies every frame and
reassembles the payload.

Backpressure flows end to end: when the consumer lags, the queue fills
and ``put`` blocks; when the producer would seal a chunk with no arena
free, the pooled buffer blocks the *encoder walk itself* — the whole
pipeline never holds more than ``pool arenas + queue slots`` chunks of
memory, no matter how large the graph is.

The script verifies the reassembled bytes equal the single-shot
``serialize()`` output and exits non-zero on any mismatch, so CI can run
it as a smoke test.

Run:  PYTHONPATH=src python examples/streaming_pipeline.py
"""

import sys
import threading
import time

from repro.common.bufpool import ChunkArenaPool
from repro.formats import (
    BoundedChunkQueue,
    ChunkAssembler,
    KryoSerializer,
    encode_cursor,
    frame_chunk,
)
from repro.jvm import FieldDescriptor, FieldKind, Heap, InstanceKlass

CHUNK_BYTES = 512
POOL_ARENAS = 2
QUEUE_SLOTS = 3
TREE_DEPTH = 9


def build_tree(heap, depth):
    """A binary tree of `Node {value: long, left, right}` objects."""

    def make(level):
        node = heap.new_instance("Node")
        node.set("value", level)
        if level < depth:
            node.set("left", make(level + 1))
            node.set("right", make(level + 1))
        return node

    return make(0)


def produce(serializer, root, queue, stats):
    """Encode chunk by chunk; frame with one-chunk lookahead so the final
    frame carries the LAST flag; block when the queue or pool is full."""
    cursor = encode_cursor(
        serializer,
        root,
        CHUNK_BYTES,
        pool=ChunkArenaPool(POOL_ARENAS, CHUNK_BYTES),
        block=True,
    )
    seq = 0
    pending = None  # one-chunk lookahead: is the *next* chunk the last?
    while True:
        arena = cursor.next_chunk()
        if pending is not None:
            queue.put(frame_chunk(seq, pending, last=(arena is None)))
            seq += 1
        if arena is None:
            break
        pending = bytes(arena)
        cursor.recycle(arena)
    stats["chunks"] = seq
    stats["summary"] = cursor.summary
    queue.close()


def main():
    heap = Heap()
    heap.registry.register(
        InstanceKlass(
            "Node",
            [
                FieldDescriptor("value", FieldKind.LONG),
                FieldDescriptor("left", FieldKind.REFERENCE),
                FieldDescriptor("right", FieldKind.REFERENCE),
            ],
        )
    )
    root = build_tree(heap, TREE_DEPTH)

    serializer = KryoSerializer()
    for klass in heap.registry:
        serializer.registration.register(klass)
    whole = serializer.serialize(root).stream.data

    queue = BoundedChunkQueue(max_chunks=QUEUE_SLOTS)
    stats = {}
    producer = threading.Thread(
        target=produce, args=(serializer, root, queue, stats), name="encoder"
    )
    producer.start()

    assembler = ChunkAssembler()
    consumed = 0
    for framed in queue:
        assembler.push(framed)
        consumed += 1
        time.sleep(0)  # consumer yield: lets the producer hit backpressure
    producer.join()

    payload = bytes(assembler.payload())
    print(
        f"graph: {2 ** (TREE_DEPTH + 1) - 1} nodes -> "
        f"{len(whole)} bytes single-shot"
    )
    print(
        f"pipeline: {consumed} chunks of <= {CHUNK_BYTES} B through a "
        f"{POOL_ARENAS}-arena pool and a {QUEUE_SLOTS}-slot queue "
        f"({queue.blocked_puts} blocked puts)"
    )
    if consumed != stats["chunks"]:
        print(
            f"FAIL: produced {stats['chunks']} chunks, consumed {consumed}",
            file=sys.stderr,
        )
        return 1
    if payload != whole:
        print(
            f"FAIL: reassembled {len(payload)} bytes != "
            f"single-shot {len(whole)} bytes",
            file=sys.stderr,
        )
        return 1
    print("reassembled payload is byte-identical to the single-shot encode")
    return 0


if __name__ == "__main__":
    sys.exit(main())
