#!/usr/bin/env python
"""Quickstart: serialize an object graph with all four formats + Cereal.

Builds a small binary tree on a simulated HotSpot heap, round-trips it
through Java built-in serialization, Kryo, Skyway, and the Cereal format,
then runs the Cereal accelerator's cycle model on the same graph and
prints modelled times alongside the CPU baselines.

Run:  python examples/quickstart.py
"""

from repro.cereal import CerealAccelerator
from repro.cpu import SoftwarePlatform
from repro.formats import (
    ClassRegistration,
    JavaSerializer,
    KryoSerializer,
    SkywaySerializer,
    graphs_equivalent,
)
from repro.jvm import (
    FieldDescriptor,
    FieldKind,
    Heap,
    InstanceKlass,
    traverse_object_graph,
)


def build_tree(heap, depth):
    """A binary tree of `Node {value: long, left, right}` objects."""

    def make(level):
        node = heap.new_instance("Node")
        node.set("value", level)
        if level < depth:
            node.set("left", make(level + 1))
            node.set("right", make(level + 1))
        return node

    return make(0)


def main():
    # 1. A simulated JVM heap with one registered class.
    heap = Heap()
    heap.registry.register(
        InstanceKlass(
            "Node",
            [
                FieldDescriptor("value", FieldKind.LONG),
                FieldDescriptor("left", FieldKind.REFERENCE),
                FieldDescriptor("right", FieldKind.REFERENCE),
            ],
        )
    )
    root = build_tree(heap, depth=8)  # 511 objects
    object_count = sum(1 for _ in traverse_object_graph(root))
    print(f"built a tree of {object_count} objects, {root.size_bytes} B per node\n")

    # 2. Software serializers, timed by the CPU cost model.
    registration = ClassRegistration()
    for klass in heap.registry:
        registration.register(klass)
    platform = SoftwarePlatform()
    print(f"{'serializer':14s} {'stream':>9s} {'ser time':>10s} {'deser time':>11s}")
    for serializer in (
        JavaSerializer(),
        KryoSerializer(registration),
        SkywaySerializer(registration),
    ):
        receiver = Heap(registry=heap.registry)
        result, ser_run = platform.run_serialize(serializer, root)
        deser, de_run = platform.run_deserialize(serializer, result.stream, receiver)
        assert graphs_equivalent(root, deser.root)
        print(
            f"{serializer.name:14s} {result.stream.size_bytes:7d} B "
            f"{ser_run.timing.time_ns / 1000:8.1f} us "
            f"{de_run.timing.time_ns / 1000:9.1f} us"
        )

    # 3. The Cereal accelerator: functional bytes + cycle-model timing.
    accelerator = CerealAccelerator()
    for klass in heap.registry:
        accelerator.register_class(klass)
    receiver = Heap(registry=heap.registry)
    result, ser_timing, _ = accelerator.serialize(root)
    rebuilt, de_timing, _ = accelerator.deserialize(result.stream, receiver)
    assert graphs_equivalent(root, rebuilt)
    print(
        f"{'cereal (HW)':14s} {result.stream.size_bytes:7d} B "
        f"{ser_timing.elapsed_ns / 1000:8.1f} us "
        f"{de_timing.elapsed_ns / 1000:9.1f} us"
    )
    print(
        f"\naccelerator bandwidth: serialize {ser_timing.bandwidth_utilization * 100:.1f}%, "
        f"deserialize {de_timing.bandwidth_utilization * 100:.1f}% of DDR4 peak "
        f"(single unit of {accelerator.config.num_serializer_units})"
    )


if __name__ == "__main__":
    main()
