#!/usr/bin/env python
"""Spark shuffle under three serializers: Java S/D, Kryo, and Cereal.

Runs the TeraSort mini-Spark application (Table III) on each backend and
prints the paper-style runtime breakdown (compute / GC / IO / S/D), the
Figure 13-style S/D speedups, and the Figure 17-style energy comparison.

Run:  python examples/spark_shuffle.py
"""

from repro.cereal import CerealAccelerator
from repro.cereal.power import cereal_energy_joules, cpu_energy_joules
from repro.formats import JavaSerializer, KryoSerializer
from repro.spark.apps import run_terasort
from repro.spark.backend import CerealBackend, SoftwareBackend


def energy_joules(result, backend_name):
    ser_s = result.breakdown.serialize_ns * 1e-9
    de_s = result.breakdown.deserialize_ns * 1e-9
    if backend_name == "cereal":
        return cereal_energy_joules(ser_s, "serialize") + cereal_energy_joules(
            de_s, "deserialize"
        )
    return cpu_energy_joules(ser_s + de_s)


def main():
    backends = {
        "java-builtin": SoftwareBackend(JavaSerializer()),
        "kryo": SoftwareBackend(KryoSerializer()),
        "cereal": CerealBackend(CerealAccelerator()),
    }

    results = {}
    print("TeraSort (scaled): runtime breakdown per serializer")
    print(f"{'backend':14s} {'total':>9s} {'compute':>8s} {'gc':>6s} {'io':>7s} "
          f"{'s/d':>8s} {'s/d %':>6s}")
    for name, backend in backends.items():
        result = run_terasort(backend, scale=0.5)
        results[name] = result
        b = result.breakdown
        print(
            f"{name:14s} {b.total_ns / 1e6:7.1f}ms {b.compute_ns / 1e6:6.1f}ms "
            f"{b.gc_ns / 1e6:4.1f}ms {b.io_ns / 1e6:5.1f}ms "
            f"{b.sd_ns / 1e6:6.1f}ms {b.sd_fraction * 100:5.1f}%"
        )

    java, kryo, cereal = (
        results["java-builtin"],
        results["kryo"],
        results["cereal"],
    )
    print("\nS/D speedups (Figure 13 style):")
    print(f"  kryo   over java: {java.breakdown.sd_ns / kryo.breakdown.sd_ns:5.2f}x")
    print(f"  cereal over java: {java.breakdown.sd_ns / cereal.breakdown.sd_ns:5.2f}x")
    print(f"  cereal over kryo: {kryo.breakdown.sd_ns / cereal.breakdown.sd_ns:5.2f}x")

    print("\nS/D energy (Figure 17 style):")
    base = energy_joules(java, "java-builtin")
    for name, result in results.items():
        joules = energy_joules(result, name)
        print(f"  {name:14s} {joules * 1000:10.3f} mJ  ({base / joules:8.1f}x saving)")


if __name__ == "__main__":
    main()
